//! Flat structure-of-arrays lower-star kernel.
//!
//! Computes byte-identical output to the two-heap homotopy expansion in
//! `lower_star.rs` (the Robins-Wood-Sheppard rule) without heaps,
//! `CellKey` materialization, or any per-vertex allocation. The rework
//! rests on three observations:
//!
//! 1. **The lower star is a 27-bit set.** Every candidate cell lives in
//!    the 3×3×3 refined cube around the vertex, so membership, facet
//!    relations and box clipping become constant bitmask lookups from
//!    [`msp_grid::offsets`]. A cell belongs to the lower star iff all of
//!    its non-center corner vertices are SoS-below the center — one mask
//!    comparison against a 26-bit "below" mask built from a linear scan
//!    of precomputed `OrderedF32` key words.
//!
//! 2. **In-star cell keys pack into one `u64`.** All member cells share
//!    the center as their SoS-maximal vertex, so `CellKey` order
//!    restricted to one star is the lexicographic order of the
//!    *descending sequences of the remaining corners*. Ranking the ≤ 26
//!    distinct corner vertices once (codes 1..=26, 5 bits each) and
//!    packing each cell's descending codes left-aligned into a `u64`
//!    (zero-filled — a facet's shorter sequence compares exactly like
//!    `CellKey`'s shorter-prefix-is-less rule) turns every key
//!    comparison the expansion makes into one integer compare.
//!
//! 3. **The two-queue rule has a scan form.** The heap algorithm always
//!    pairs the minimum-key cell that has exactly one unassigned
//!    same-group facet, and when no such cell exists it marks the
//!    minimum-key unassigned cell critical (which then necessarily has
//!    zero unassigned facets, since a facet's key is strictly smaller
//!    than its coface's). Over a ≤ 27-element bitmask that selection is
//!    a handful of `trailing_zeros` loops — no queues, no re-push
//!    bookkeeping, and per-group independence means owner-set groups can
//!    run one after another.
//!
//! The sweep reads one precomputed array: the block's vertex values
//! mapped through [`OrderedF32`] (a pooled `Vec<u32>`, see
//! `crate::pool`), walked x-fastest with incrementally advanced indices.
//! Everything else is stack scratch, so the kernel performs zero heap
//! allocations after the per-block key array is built.

use crate::gradient::{GradientField, ASSIGNED, CRITICAL, PAIRED, TAIL};
use msp_grid::decomp::{Decomposition, OwnerSet};
use msp_grid::field::{BlockField, OrderedF32};
use msp_grid::offsets::{
    clip_mask, offset_of, ALL_OFFSETS, CENTER, NEG_GID, STAR_CORNERS, STAR_FACETS,
};
use msp_grid::{Dims, RCoord};

const CENTER_BIT: u32 = 1 << CENTER;

/// Fill `out` with the block's vertex values mapped through the monotone
/// [`OrderedF32`] transform, in the block's own x-fastest layout. All
/// SoS value comparisons in the sweep become raw `u32` compares on this
/// array.
pub(crate) fn ordered_keys_into(field: &BlockField, out: &mut Vec<u32>) {
    out.clear();
    out.extend(field.data().iter().map(|&v| OrderedF32::new(v).0));
}

/// Immutable per-block state of the flat sweep, shared by every slab
/// thread. Holds the three precomputed 27-entry delta tables that turn
/// neighborhood addressing into add-and-index.
pub(crate) struct FlatSweep<'a> {
    decomp: &'a Decomposition,
    /// `OrderedF32` words of the block's vertices (block-local layout).
    ord: &'a [u32],
    block_id: u32,
    /// Block bounds in **vertex** coordinates (inclusive).
    blo: [u32; 3],
    bhi: [u32; 3],
    /// Block-local vertex dims (for row starts into `ord`).
    bd: Dims,
    /// Block-local vertex index delta per offset.
    ld: [isize; 27],
    /// Global vertex id delta per offset (SoS gid tiebreak within the
    /// star: `gid_a < gid_b ⇔ gd[a] < gd[b]`, same center).
    gd: [i64; 27],
}

impl<'a> FlatSweep<'a> {
    pub(crate) fn new(field: &'a BlockField, decomp: &'a Decomposition, ord: &'a [u32]) -> Self {
        let block = field.block();
        let bd = block.dims();
        let dom = field.domain();
        debug_assert_eq!(ord.len() as u64, bd.n_verts());
        let mut ld = [0isize; 27];
        let mut gd = [0i64; 27];
        for oi in 0..27 {
            let (dx, dy, dz) = offset_of(oi);
            ld[oi] = dx as isize + bd.nx as isize * (dy as isize + bd.ny as isize * dz as isize);
            gd[oi] = dx as i64 + dom.nx as i64 * (dy as i64 + dom.ny as i64 * dz as i64);
        }
        FlatSweep {
            decomp,
            ord,
            block_id: block.id,
            blo: block.lo,
            bhi: block.hi,
            bd,
            ld,
            gd,
        }
    }

    /// Run the flat sweep for every vertex with z ∈ `[z0, z1]` (global
    /// vertex coordinates), writing into `grad` — which may cover just a
    /// slab's refined sub-box. The drop-in replacement for the heap
    /// kernel's `sweep_z_range`.
    pub(crate) fn sweep_z_range(&self, z0: u32, z1: u32, grad: &mut GradientField) {
        let (sx, sxy) = grad.strides();
        let mut rd = [0isize; 27];
        for (oi, r) in rd.iter_mut().enumerate() {
            let (dx, dy, dz) = offset_of(oi);
            *r = dx as isize + sx as isize * dy as isize + sxy as isize * dz as isize;
        }
        for z in z0..=z1 {
            let mz = clip_mask(2, z > self.blo[2], z < self.bhi[2]);
            for y in self.blo[1]..=self.bhi[1] {
                let my = mz & clip_mask(1, y > self.blo[1], y < self.bhi[1]);
                let li0 = self.bd.vertex_index(0, y - self.blo[1], z - self.blo[2]) as usize;
                let mut gi = grad.linear_index(RCoord::of_vertex(self.blo[0], y, z));
                for (k, x) in (self.blo[0]..=self.bhi[0]).enumerate() {
                    let valid = my & clip_mask(0, x > self.blo[0], x < self.bhi[0]);
                    self.process_vertex(li0 + k, gi, (x, y, z), valid, &rd, grad);
                    gi += 2;
                }
            }
        }
    }

    /// Assign the entire lower star of one vertex. `li` indexes `ord`,
    /// `gi` is the vertex cell's linear index in `grad`, `valid` is the
    /// box-clipped offset mask.
    fn process_vertex(
        &self,
        li: usize,
        gi: usize,
        v: (u32, u32, u32),
        valid: u32,
        rd: &[isize; 27],
        grad: &mut GradientField,
    ) {
        let k0 = self.ord[li];

        // 26-bit mask of neighbor vertices SoS-below the center: value
        // compare on the OrderedF32 words, gid tiebreak from NEG_GID.
        let mut below = 0u32;
        let mut m = valid & !CENTER_BIT;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let kn = self.ord[(li as isize + self.ld[oi]) as usize];
            let b = ((kn < k0) as u32) | (((kn == k0) as u32) & (NEG_GID >> oi & 1));
            below |= b << oi;
        }

        // Membership: a cell is in the lower star iff all of its
        // non-center corners are below the center.
        let mut member = CENTER_BIT;
        let mut m = valid & !CENTER_BIT;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let sc = STAR_CORNERS[oi];
            member |= (((below & sc) == sc) as u32) << oi;
        }

        // Local SoS minimum: the star is just the vertex, critical.
        if member == CENTER_BIT {
            grad.write_byte(gi, ASSIGNED | CRITICAL);
            return;
        }

        // Rank the corner vertices the member cells actually use,
        // ascending by (value word, gid); codes 1..=n, 5 bits each.
        let mut needed = 0u32;
        let mut m = member & !CENTER_BIT;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            needed |= STAR_CORNERS[oi];
        }
        let mut order = [(0u32, 0i64, 0u8); 26];
        let mut n = 0usize;
        let mut m = needed;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let item = (
                self.ord[(li as isize + self.ld[oi]) as usize],
                self.gd[oi],
                oi as u8,
            );
            let mut j = n;
            while j > 0 && (order[j - 1].0, order[j - 1].1) > (item.0, item.1) {
                order[j] = order[j - 1];
                j -= 1;
            }
            order[j] = item;
            n += 1;
        }
        let mut code = [0u8; 27];
        for (r, &(_, _, oi)) in order[..n].iter().enumerate() {
            code[oi as usize] = r as u8 + 1;
        }

        // Pack each member cell's descending corner codes into a u64.
        // Left-aligned with zero fill: within one star this compares
        // exactly like CellKey (all members share the center as their
        // maximal vertex, and a facet's corner set is a strict subset of
        // its coface's, so the 0-fill reproduces shorter-prefix-is-less).
        let mut keys = [0u64; 27];
        let mut m = member & !CENTER_BIT;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let cm = STAR_CORNERS[oi];
            let mut codemask = 0u32;
            let mut cc = cm;
            while cc != 0 {
                let ci = cc.trailing_zeros() as usize;
                cc &= cc - 1;
                codemask |= 1 << code[ci];
            }
            let mut key = 0u64;
            while codemask != 0 {
                let b = 31 - codemask.leading_zeros();
                codemask &= !(1 << b);
                key = (key << 5) | b as u64;
            }
            keys[oi] = key << (5 * (7 - cm.count_ones()));
        }
        // keys[CENTER] stays 0: the vertex's sequence is empty, the
        // smallest — matching CellKey order.

        if valid == ALL_OFFSETS {
            // Interior fast path: the whole star has the singleton owner
            // set {block}, one group.
            expand_group(member, &keys, gi, rd, grad);
            return;
        }

        // Boundary: stratify members into owner-set groups (paper
        // §IV-C's pairing restriction) and expand each independently.
        // Cross-group operations commute — bytes only depend on the
        // within-group sequence — so sequential groups reproduce the
        // heap's interleaved order bit for bit.
        let rv = RCoord::of_vertex(v.0, v.1, v.2);
        let mut gsets = [OwnerSet::empty(); 27];
        let mut gmask = [0u32; 27];
        let mut ngroups = 0usize;
        let mut m = member;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let (dx, dy, dz) = offset_of(oi);
            let c = RCoord::new(
                (rv.x as i32 + dx) as u32,
                (rv.y as i32 + dy) as u32,
                (rv.z as i32 + dz) as u32,
            );
            let owners = if self.decomp.interior_to(self.block_id, c) {
                let mut o = OwnerSet::empty();
                o.push(self.block_id);
                o
            } else {
                self.decomp.owners(c)
            };
            match gsets[..ngroups].iter().position(|g| *g == owners) {
                Some(g) => gmask[g] |= 1 << oi,
                None => {
                    gsets[ngroups] = owners;
                    gmask[ngroups] = 1 << oi;
                    ngroups += 1;
                }
            }
        }
        for &gm in gmask.iter().take(ngroups) {
            expand_group(gm, &keys, gi, rd, grad);
        }
    }
}

/// Homotopy-expand one owner-set group of a lower star, given as a
/// bitmask of unassigned member cells. The scan form of the two-queue
/// rule: pair the min-key cell with exactly one unassigned same-group
/// facet; when none exists, the min-key unassigned cell (then
/// necessarily facet-free, as facet keys are strictly smaller) becomes
/// critical.
fn expand_group(
    mut un: u32,
    keys: &[u64; 27],
    gi: usize,
    rd: &[isize; 27],
    grad: &mut GradientField,
) {
    while un != 0 {
        let mut best_e = 27usize;
        let mut best_e_key = u64::MAX;
        let mut best_a = 27usize;
        let mut best_a_key = u64::MAX;
        let mut m = un;
        while m != 0 {
            let oi = m.trailing_zeros() as usize;
            m &= m - 1;
            let k = keys[oi];
            if k < best_a_key {
                best_a_key = k;
                best_a = oi;
            }
            if (STAR_FACETS[oi] & un).count_ones() == 1 && k < best_e_key {
                best_e_key = k;
                best_e = oi;
            }
        }
        if best_e < 27 {
            let fj = (STAR_FACETS[best_e] & un).trailing_zeros() as usize;
            write_pair(gi, rd, fj, best_e, grad);
            un &= !((1u32 << best_e) | (1u32 << fj));
        } else {
            grad.write_byte(at(gi, rd[best_a]), ASSIGNED | CRITICAL);
            un &= !(1u32 << best_a);
        }
    }
}

#[inline]
fn at(gi: usize, d: isize) -> usize {
    (gi as isize + d) as usize
}

/// Write the two bytes of a gradient pair directly: `tail_oi` (the
/// facet, flow leaves through it) and `head_oi` (its coface) differ on
/// exactly one axis by one refined step. Mirrors `GradientField::pair`'s
/// byte encoding without re-deriving coordinates.
fn write_pair(
    gi: usize,
    rd: &[isize; 27],
    tail_oi: usize,
    head_oi: usize,
    grad: &mut GradientField,
) {
    let t = offset_of(tail_oi);
    let h = offset_of(head_oi);
    let (axis, positive) = if t.0 != h.0 {
        (0u8, h.0 > t.0)
    } else if t.1 != h.1 {
        (1, h.1 > t.1)
    } else {
        (2, h.2 > t.2)
    };
    let fwd = axis * 2 + positive as u8;
    let bwd = axis * 2 + (!positive) as u8;
    grad.write_byte(at(gi, rd[tail_oi]), ASSIGNED | PAIRED | TAIL | fwd);
    grad.write_byte(at(gi, rd[head_oi]), ASSIGNED | PAIRED | bwd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::decomp::Decomposition;
    use msp_grid::ScalarField;

    #[test]
    fn ordered_keys_preserve_order() {
        let dims = Dims::new(4, 3, 2);
        let f = ScalarField::from_fn(dims, |x, y, z| (x as f32) - (y as f32) * 0.5 + z as f32);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let mut ord = Vec::new();
        ordered_keys_into(&bf, &mut ord);
        assert_eq!(ord.len(), bf.data().len());
        for (i, &v) in bf.data().iter().enumerate() {
            assert_eq!(ord[i], OrderedF32::new(v).0);
        }
        for i in 1..ord.len() {
            assert_eq!(
                bf.data()[i - 1] < bf.data()[i],
                ord[i - 1] < ord[i],
                "monotone transform"
            );
        }
    }

    #[test]
    fn write_pair_matches_gradient_pair() {
        use msp_grid::offsets::index_of;
        use msp_grid::topology::RBox;
        let bbox = RBox::new(RCoord::new(0, 0, 0), RCoord::new(4, 4, 4));
        // pair the vertex cell (2,2,2) with the edge toward -y, both ways
        let mut a = GradientField::new(bbox);
        a.pair(RCoord::new(2, 2, 2), RCoord::new(2, 1, 2));
        let mut b = GradientField::new(bbox);
        let (sx, sxy) = b.strides();
        let mut rd = [0isize; 27];
        for (oi, r) in rd.iter_mut().enumerate() {
            let (dx, dy, dz) = offset_of(oi);
            *r = dx as isize + sx as isize * dy as isize + sxy as isize * dz as isize;
        }
        let gi = b.linear_index(RCoord::new(2, 2, 2));
        write_pair(gi, &rd, CENTER, index_of(0, -1, 0), &mut b);
        assert_eq!(a.bytes(), b.bytes());
    }
}
