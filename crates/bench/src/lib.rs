//! Shared harness code for the per-figure/per-table experiment binaries
//! (see DESIGN.md §5 for the experiment index).
//!
//! Every binary prints the same rows/series the paper reports, scaled to
//! workstation size. Scale knobs come from environment variables so
//! EXPERIMENTS.md runs are reproducible:
//!
//! * `MSP_SCALE=small|default|large` — preset problem sizes;
//! * individual binaries document any extra knobs they accept.

use msp_core::{RunResult, SimParams, SimReport};
use msp_grid::ScalarField;
use msp_telemetry::{write_named_json, Json, RunTrace};
use std::path::PathBuf;

/// Problem-size preset selected by `MSP_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds end-to-end).
    Small,
    /// Workstation defaults used for EXPERIMENTS.md.
    Default,
    /// Closer to paper dimensions; minutes to hours.
    Large,
}

impl Scale {
    pub fn from_env() -> Self {
        match std::env::var("MSP_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("large") => Scale::Large,
            _ => Scale::Default,
        }
    }

    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, small: T, default: T, large: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Default => default,
            Scale::Large => large,
        }
    }
}

/// Run one simulation and return the report (thin wrapper that keeps the
/// binaries terse).
pub fn run_sim(field: &ScalarField, ranks: u32, params: &SimParams) -> SimReport {
    msp_core::simulate(field, ranks, params).unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Where experiment outputs land: `MSP_RESULTS_DIR` or `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MSP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Persist an already-built telemetry document as
/// `results/<name>.telemetry.json`. The emit_* wrappers below cover the
/// common report shapes; binaries with a bespoke document (e.g. the fault
/// sweep) call this directly so every artifact still lands in one place.
pub fn emit_doc(name: &str, doc: &Json) -> Option<PathBuf> {
    match write_named_json(&results_dir(), name, doc) {
        Ok(p) => {
            println!("\ntelemetry written to {}", p.display());
            Some(p)
        }
        Err(e) => {
            eprintln!("\ntelemetry write failed ({name}): {e}");
            None
        }
    }
}

/// Whether `MSP_TRACE` asks the experiment binaries to record and emit
/// causal event traces (any value but `0`/`off`/empty enables).
pub fn trace_enabled() -> bool {
    match std::env::var("MSP_TRACE").as_deref() {
        Ok("") | Ok("0") | Ok("off") | Err(_) => false,
        Ok(_) => true,
    }
}

/// Persist a run's causal trace as `results/<name>.trace.json`
/// (Chrome trace-event format; load in ui.perfetto.dev).
pub fn emit_trace(name: &str, trace: &RunTrace) -> Option<PathBuf> {
    match trace.write(&results_dir(), name) {
        Ok(p) => {
            println!("trace written to {}", p.display());
            Some(p)
        }
        Err(e) => {
            eprintln!("trace write failed ({name}): {e}");
            None
        }
    }
}

/// Persist a threaded-pipeline run's aggregated telemetry as
/// `results/<name>.telemetry.json`. Shared by every experiment binary so
/// report emission lives in exactly one place.
pub fn emit_run_report(name: &str, result: &RunResult) -> Option<PathBuf> {
    let mut report = result.telemetry.clone();
    report.name = name.to_string();
    emit_doc(name, &report.to_json())
}

/// Persist a labelled series of threaded-pipeline runs (ablations,
/// stability sweeps) as a single `results/<name>.telemetry.json`.
pub fn emit_run_series(name: &str, series: &[(String, &RunResult)]) -> Option<PathBuf> {
    let doc = Json::obj(vec![
        ("version", Json::U64(msp_telemetry::REPORT_VERSION as u64)),
        ("kind", Json::str("run_series")),
        ("name", Json::str(name)),
        (
            "runs",
            Json::Arr(
                series
                    .iter()
                    .map(|(label, r)| {
                        Json::obj(vec![
                            ("label", Json::str(label.clone())),
                            ("report", r.telemetry.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    emit_doc(name, &doc)
}

/// Persist one simulated run under `results/<name>.telemetry.json`.
pub fn emit_sim_report(name: &str, report: &SimReport) -> Option<PathBuf> {
    emit_doc(name, &report.to_json())
}

/// Persist a labelled series of simulated runs (scaling sweeps, strategy
/// tables) as a single `results/<name>.telemetry.json` document.
pub fn emit_sim_series(name: &str, series: &[(String, SimReport)]) -> Option<PathBuf> {
    let doc = Json::obj(vec![
        ("version", Json::U64(msp_telemetry::REPORT_VERSION as u64)),
        ("kind", Json::str("sim_series")),
        ("name", Json::str(name)),
        (
            "runs",
            Json::Arr(
                series
                    .iter()
                    .map(|(label, r)| {
                        Json::obj(vec![
                            ("label", Json::str(label.clone())),
                            ("report", r.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    emit_doc(name, &doc)
}

/// Strong-scaling efficiency relative to a base point:
/// `(t_base / t) / (p / p_base)`.
pub fn efficiency(p_base: u32, t_base: f64, p: u32, t: f64) -> f64 {
    (t_base / t) / (p as f64 / p_base as f64)
}

/// Format a byte count the way the paper quotes sizes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Markdown-ish table printer: header once, then aligned rows.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(9)).collect();
        let mut line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            line.push_str(&format!("{:>w$} ", h, w = w));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len()));
        Table { widths }
    }

    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{:>w$} ", c, w = w));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_baseline_is_100_percent() {
        assert_eq!(efficiency(32, 970.0, 32, 970.0), 1.0);
        // paper §VI-D1: 970 s at 32 procs -> 29 s at 8192 procs = 13%
        let e = efficiency(32, 970.0, 8192, 29.0);
        assert!((e - 0.13).abs() < 0.01, "paper's own example: {e}");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(26 * 1024 * 1024), "26.00 MB");
        assert_eq!(fmt_bytes(4 * 1024 * 1024 * 1024), "4.00 GB");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Large.pick(1, 2, 3), 3);
    }
}
