//! Trace-schema self-check: runs a small traced 4-rank, 2-round pipeline,
//! writes the Chrome trace-event file, parses it back, and verifies the
//! invariants the rest of the tooling relies on:
//!
//! * the document round-trips through `Json::parse` and has a non-empty
//!   `traceEvents` array;
//! * every flow-finish (`ph:"f"`) id has exactly one matching flow-start
//!   (`ph:"s"`) id — message edges pair up;
//! * per-rank **merged** (interval-union) span totals agree with the
//!   telemetry recorder's phase totals within 1% — the raw per-span sum
//!   can legitimately exceed the wall clock when the local stage runs
//!   thread-local gradient/trace spans concurrently;
//! * absent faults, every recv has a matching send and vice versa.
//!
//! Prints the computed critical path and exits non-zero on any violation,
//! so `scripts/verify.sh` / `scripts/check-offline.sh` can gate on it.
//!
//! ```text
//! cargo run --release -p msp-bench --bin trace_check
//! ```

use msp_bench::emit_trace;
use msp_core::{run_parallel, Input, MergePlan, PipelineParams};
use msp_telemetry::Json;
use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

const RANKS: u32 = 4;
const ROUNDS: &[u32] = &[2, 2]; // 4 blocks -> 2 -> 1

fn obj_get<'a>(j: &'a Json, key: &str) -> Option<&'a Json> {
    match j {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn as_f64(j: &Json) -> Option<f64> {
    match j {
        Json::F64(v) => Some(*v),
        Json::U64(v) => Some(*v as f64),
        Json::I64(v) => Some(*v as f64),
        _ => None,
    }
}

fn main() {
    let field = Arc::new(msp_synth::sinusoid(33, 3));
    let params = PipelineParams {
        persistence_frac: 0.01,
        plan: MergePlan::rounds(ROUNDS.to_vec()),
        trace: true,
        ..Default::default()
    };
    let r = run_parallel(&Input::Memory(field), RANKS, RANKS, &params, None)
        .unwrap_or_else(|e| panic!("traced run failed: {e}"));
    let Some(tr) = &r.trace else {
        eprintln!("FAIL: params.trace was set but RunResult.trace is None");
        exit(1);
    };

    let mut failures = 0u32;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("ok   {what}");
        } else {
            eprintln!("FAIL {what}");
            failures += 1;
        }
    };

    // ---- causal matching on the in-memory trace ----
    let m = tr.match_messages();
    check(!m.edges.is_empty(), "trace carries message flow edges");
    check(
        m.unmatched_sends.is_empty(),
        "every send has a matching recv (fault-free run)",
    );
    check(
        m.unmatched_recvs.is_empty(),
        "every recv has a matching send (fault-free run)",
    );

    // ---- span totals vs the recorder's phase totals ----
    // merged (interval-union) seconds: concurrent thread-local spans of
    // one phase must not double-count, matching the recorder's buckets
    for rank in &r.telemetry.ranks {
        let Some(t) = tr.ranks.iter().find(|t| t.rank == rank.rank) else {
            check(false, &format!("rank {} present in trace", rank.rank));
            continue;
        };
        for (key, rec_s) in &rank.phases {
            let trace_s = t.merged_span_seconds(key);
            let tol = (rec_s * 0.01).max(0.5e-3);
            check(
                (trace_s - rec_s).abs() <= tol,
                &format!(
                    "rank {} phase '{key}': trace {trace_s:.6}s vs recorder {rec_s:.6}s (tol {tol:.6}s)",
                    rank.rank
                ),
            );
        }
    }

    // ---- file round trip ----
    let Some(path) = emit_trace("trace_check", tr) else {
        eprintln!("FAIL: trace file write failed");
        exit(1);
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading back {}: {e}", path.display()));
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: {} does not parse: {e}", path.display());
            exit(1);
        }
    };
    let events = match obj_get(&doc, "traceEvents") {
        Some(Json::Arr(evs)) => evs,
        _ => {
            eprintln!("FAIL: document has no traceEvents array");
            exit(1);
        }
    };
    check(!events.is_empty(), "traceEvents is non-empty");

    let mut n_spans = 0u64;
    let mut flow_starts: HashMap<u64, u32> = HashMap::new();
    let mut flow_finishes: HashMap<u64, u32> = HashMap::new();
    let mut well_formed = true;
    for ev in events {
        let ph = obj_get(ev, "ph").and_then(as_str).unwrap_or("");
        match ph {
            "X" => {
                n_spans += 1;
                well_formed &= obj_get(ev, "dur")
                    .and_then(as_f64)
                    .is_some_and(|d| d >= 0.0)
                    && obj_get(ev, "ts").and_then(as_f64).is_some();
            }
            "s" | "f" => {
                let Some(id) = obj_get(ev, "id").and_then(as_f64) else {
                    well_formed = false;
                    continue;
                };
                let side = if ph == "s" {
                    &mut flow_starts
                } else {
                    &mut flow_finishes
                };
                *side.entry(id as u64).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    check(
        well_formed,
        "every span event carries numeric ts + dur >= 0",
    );
    check(n_spans > 0, "document contains complete ('X') span events");
    let paired = flow_starts.len() == flow_finishes.len()
        && flow_starts
            .iter()
            .all(|(id, n)| flow_finishes.get(id) == Some(n));
    check(
        paired,
        &format!(
            "flow edges pair up ({} starts, {} finishes)",
            flow_starts.len(),
            flow_finishes.len()
        ),
    );
    check(
        flow_starts.len() == m.edges.len(),
        "file flow-edge count matches in-memory matching",
    );

    // ---- critical path ----
    match tr.critical_path() {
        None => check(false, "critical path computable"),
        Some(cp) => {
            check(
                cp.total_ns <= cp.wall_ns,
                "critical path does not exceed wall clock",
            );
            println!(
                "critical path: {:.3}s on the causal chain, {:.3}s wall clock",
                cp.total_ns as f64 * 1e-9,
                cp.wall_ns as f64 * 1e-9
            );
            for s in cp.ranked() {
                println!(
                    "  rank {:>2}  {:<20} {:>9.3}s  {:>5.1}% of wall",
                    s.rank,
                    s.key,
                    s.dur_ns as f64 * 1e-9,
                    cp.pct_of_wall(&s)
                );
            }
        }
    }

    if failures > 0 {
        eprintln!("\ntrace self-check FAILED ({failures} violation(s))");
        exit(1);
    }
    println!("\ntrace self-check OK");
}
