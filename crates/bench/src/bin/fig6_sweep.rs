//! Fig 6 — compute time, merge time and output size as a function of
//! process count, data size and data complexity (3×3 log-log panels).
//!
//! Each (complexity, size) pair is a panel line; rows sweep the virtual
//! rank count. Two rounds of radix-8 merging, exactly as the paper's
//! test. Output is CSV-like so the series can be plotted directly.
//!
//! ```text
//! cargo run --release -p msp-bench --bin fig6_sweep
//! ```

use msp_bench::{emit_sim_series, Scale};
use msp_core::{MergePlan, SimParams};

fn main() {
    let scale = Scale::from_env();
    // paper: sizes 128..512 per side, complexity 4..64 per side,
    // processes 64..4096, two rounds of radix-8 (output = P/64 blocks).
    // workstation scaling: smaller sizes, same structure.
    let sizes: Vec<u32> = match scale {
        Scale::Small => vec![17, 33],
        Scale::Default => vec![33, 49, 65],
        Scale::Large => vec![65, 97, 129],
    };
    let complexities: Vec<u32> = vec![2, 4, 8];
    let ranks: Vec<u32> = match scale {
        Scale::Small => vec![64, 128],
        Scale::Default => vec![64, 128, 256, 512],
        Scale::Large => vec![64, 128, 256, 512, 1024],
    };

    println!("Fig 6 analogue: two rounds of radix-8 merging");
    println!("columns: complexity,points_per_side,ranks,compute_s,merge_s,output_bytes\n");
    println!("complexity,size,ranks,compute_s,merge_s,output_bytes");
    let mut sims = Vec::new();
    for &c in &complexities {
        for &n in &sizes {
            let field = msp_synth::sinusoid(n, c);
            for &p in &ranks {
                let params = SimParams {
                    persistence_frac: 0.01,
                    plan: MergePlan::rounds(vec![8, 8]),
                    ..Default::default()
                };
                let r = msp_core::simulate(&field, p, &params).unwrap();
                println!(
                    "{c},{n},{p},{:.6},{:.6},{}",
                    r.compute_s, r.merge_s, r.output_bytes
                );
                sims.push((format!("c{c}_n{n}_p{p}"), r));
            }
        }
    }
    emit_sim_series("fig6_sweep", &sims);
    println!(
        "\nExpected shapes (paper §VI-B): compute time scales ~1/P and with\n\
         size^3, independent of complexity; merge time is independent of\n\
         size but grows with complexity; output size grows slowly with P\n\
         (boundary artifacts) and is dominated by geometry at low\n\
         complexity, by nodes/arcs at high complexity."
    );
}
