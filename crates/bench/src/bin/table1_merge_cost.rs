//! Table I — the cost of each merge round: merging 2048 blocks with the
//! cumulative plans `[4]`, `[4,8]`, `[4,8,8]`, `[4,8,8,8]`, reporting total merge
//! time and the time of the final round. The paper's point: later rounds
//! are more expensive, because complexes grow and gravitate to fewer
//! processes.
//!
//! ```text
//! cargo run --release -p msp-bench --bin table1_merge_cost
//! ```

use msp_bench::{emit_sim_series, Scale, Table};
use msp_core::{MergePlan, SimParams};

fn main() {
    let scale = Scale::from_env();
    // paper: 2048 blocks across 2048 processes; full plan [4,8,8,8]
    let blocks = scale.pick(256u32, 2048, 2048);
    let size = scale.pick(33u32, 49, 97);
    let complexity = scale.pick(4u32, 8, 16);
    let full: Vec<u32> = if blocks == 2048 {
        vec![4, 8, 8, 8]
    } else {
        MergePlan::full_merge(blocks).radices
    };

    println!(
        "Table I analogue: cost of merging {blocks} blocks (sinusoid {size}^3, complexity {complexity})\n"
    );
    let field = msp_synth::sinusoid(size, complexity);
    let t = Table::new(&["rounds", "radices", "total merge (s)", "final round (s)"]);
    let mut sims = Vec::new();
    for upto in 1..=full.len() {
        let plan = MergePlan::rounds(full[..upto].to_vec());
        let params = SimParams {
            persistence_frac: 0.01,
            plan,
            ..Default::default()
        };
        let r = msp_core::simulate(&field, blocks, &params).unwrap();
        let rounds_total: f64 = r.rounds.iter().map(|x| x.round_s).sum();
        let last = r.rounds.last().unwrap();
        t.row(&[
            format!("{upto}"),
            full[..upto]
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.4}", rounds_total),
            format!("{:.4}", last.round_s),
        ]);
        sims.push((format!("rounds{upto}"), r));
    }
    emit_sim_series("table1_merge_cost", &sims);
    println!(
        "\nReading the table top to bottom, the final-round column gives the\n\
         per-round cost of rounds 1..n: merging gets more expensive as it\n\
         progresses (larger complexes, fewer processes) — Table I's trend."
    );
}
