//! Local-stage kernel microbenchmark: lower-star gradient throughput
//! (refined cells/s) and V-path trace throughput (arc path-steps/s),
//! old two-heap kernel vs the flat SoA kernel side by side, on the same
//! single-block workloads.
//!
//! Unlike `local_scaling` (which times whole pipeline phases through the
//! telemetry report) this calls the two kernel entry points directly, so
//! the numbers are pure kernel time — no read, no complex construction,
//! no merge. Every workload first **gates bit-exactness**: the flat
//! gradient bytes and flat arc store must equal the heap kernel's before
//! any timing is believed.
//!
//! Emits `results/BENCH_kernel.json` (re-parsed as a schema self-check).
//! Knobs:
//!
//! * `MSP_SCALE=small|default|large` — volume size and repetitions;
//! * `MSP_THREADS=n` — thread count for the kernel calls (default 1:
//!   the serial side-by-side is the kernel-vs-kernel comparison).
//!
//! ```text
//! cargo run --release -p msp-bench --bin kernel_bench
//! ```

use msp_bench::{results_dir, Scale, Table};
use msp_grid::decomp::Decomposition;
use msp_grid::field::BlockField;
use msp_grid::par::available_threads;
use msp_morse::gradient::GradientField;
use msp_morse::{assign_gradient_kernel, trace_all_arcs_kernel, Kernel, TraceLimits};
use msp_telemetry::Json;
use std::time::Instant;

/// Best-of-reps kernel timings for one (workload, kernel) pair.
struct KernelRow {
    kernel: Kernel,
    grad_s: f64,
    cells: u64,
    trace_s: f64,
    arc_steps: u64,
    arcs: u64,
    grad: GradientField,
    arcs_store: msp_morse::ArcStore,
}

fn time_kernel(
    bf: &BlockField,
    decomp: &Decomposition,
    kernel: Kernel,
    threads: usize,
    reps: usize,
) -> KernelRow {
    let mut grad_s = f64::INFINITY;
    let mut trace_s = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (grad, kstats) = assign_gradient_kernel(bf, decomp, threads, kernel);
        grad_s = grad_s.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let (arcs, tstats) = trace_all_arcs_kernel(&grad, TraceLimits::default(), threads, kernel);
        trace_s = trace_s.min(t1.elapsed().as_secs_f64());

        out = Some(KernelRow {
            kernel,
            grad_s,
            cells: kstats.cells,
            trace_s,
            arc_steps: tstats.path_cells_total,
            arcs: tstats.arcs,
            grad,
            arcs_store: arcs,
        });
    }
    out.expect("at least one repetition")
}

fn main() {
    let scale = Scale::from_env();
    let size = scale.pick(13, 41, 73);
    let reps = scale.pick(1, 3, 5);
    let threads: usize = std::env::var("MSP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let host = available_threads();
    let dims = msp_grid::Dims::new(size, size, size);
    println!(
        "kernel microbench: {size}^3 workloads, {reps} rep(s), \
         {threads} thread(s), host parallelism {host}\n"
    );

    let workloads: Vec<(String, msp_grid::ScalarField)> = vec![
        (format!("sinusoid_{size}_4"), msp_synth::sinusoid(size, 4)),
        (format!("noise_{size}_29"), msp_synth::white_noise(dims, 29)),
    ];

    let table = Table::new(&[
        "workload", "kernel", "grad_s", "Mcells/s", "trace_s", "Msteps/s", "arcs",
    ]);
    let mut docs: Vec<Json> = Vec::new();
    for (name, field) in &workloads {
        let decomp = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(decomp.block(0));

        let heap = time_kernel(&bf, &decomp, Kernel::Heap, threads, reps);
        let flat = time_kernel(&bf, &decomp, Kernel::Flat, threads, reps);

        // bit-exactness gate: timings of a wrong kernel are worthless
        assert_eq!(
            flat.grad.bytes(),
            heap.grad.bytes(),
            "{name}: flat gradient diverged from the two-heap kernel"
        );
        assert_eq!(
            flat.arcs_store, heap.arcs_store,
            "{name}: flat arc store diverged from the recursive tracer"
        );

        let mut rows = Vec::new();
        for r in [&heap, &flat] {
            let cps = r.cells as f64 / r.grad_s.max(1e-12);
            let sps = r.arc_steps as f64 / r.trace_s.max(1e-12);
            table.row(&[
                name.clone(),
                r.kernel.name().to_string(),
                format!("{:.4}", r.grad_s),
                format!("{:.2}", cps / 1e6),
                format!("{:.4}", r.trace_s),
                format!("{:.2}", sps / 1e6),
                format!("{}", r.arcs),
            ]);
            rows.push(Json::obj(vec![
                ("kernel", Json::str(r.kernel.name())),
                ("grad_s", Json::F64(r.grad_s)),
                ("grad_cells_per_s", Json::F64(cps)),
                ("trace_s", Json::F64(r.trace_s)),
                ("trace_arc_steps_per_s", Json::F64(sps)),
                ("arcs", Json::U64(r.arcs)),
            ]));
        }
        docs.push(Json::obj(vec![
            ("volume", Json::str(name.clone())),
            ("cells", Json::U64(flat.cells)),
            ("arc_steps", Json::U64(flat.arc_steps)),
            ("bit_exact", Json::Bool(true)),
            ("kernels", Json::Arr(rows)),
            (
                "grad_speedup_flat_vs_heap",
                Json::F64(heap.grad_s / flat.grad_s.max(1e-12)),
            ),
            (
                "trace_speedup_flat_vs_heap",
                Json::F64(heap.trace_s / flat.trace_s.max(1e-12)),
            ),
        ]));
    }
    println!("\nall workloads bit-exact: flat == heap (gradient bytes and arc stores)");

    let doc = Json::obj(vec![
        ("kind", Json::str("kernel_bench")),
        ("reps", Json::U64(reps as u64)),
        ("threads", Json::U64(threads as u64)),
        ("host_parallelism", Json::U64(host as u64)),
        ("workloads", Json::Arr(docs)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_kernel.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_kernel.json");
    println!("bench written to {}", path.display());

    // schema self-check: the emitted document must round-trip
    let text = std::fs::read_to_string(&path).expect("read back BENCH_kernel.json");
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} does not re-parse: {e}", path.display()));
    let Json::Obj(top) = &parsed else {
        panic!("BENCH_kernel.json top level is not an object");
    };
    let n = top
        .iter()
        .find(|(k, _)| k == "workloads")
        .map(|(_, v)| match v {
            Json::Arr(a) => a.len(),
            _ => panic!("workloads is not an array"),
        })
        .expect("workloads present");
    assert_eq!(n, workloads.len(), "round-trip preserves every workload");
    println!("schema self-check OK ({n} workloads)");
}
