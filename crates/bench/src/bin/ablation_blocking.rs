//! Ablation — blocks-per-process and boundary-restriction overhead.
//!
//! Two design choices DESIGN.md calls out:
//!
//! 1. **Blocks per process** (paper §IV-A): the decomposition supports
//!    more blocks than ranks for load balance, but the paper found one
//!    block per process sufficient. This ablation measures the threaded
//!    pipeline at 1, 2 and 4 blocks per rank over the same total grid.
//! 2. **Boundary-restricted pairing** (paper §IV-C): the restriction
//!    creates spurious critical cells — the price of mergeability. This
//!    ablation counts them against an unrestricted serial run.
//!
//! ```text
//! cargo run --release -p msp-bench --bin ablation_blocking
//! ```

use msp_bench::{emit_run_series, emit_trace, trace_enabled, Scale, Table};
use msp_core::{run_parallel, Input, MergePlan, PipelineParams};
use msp_grid::{Decomposition, Dims};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(33u32, 65, 97);
    let field = Arc::new(msp_synth::jet(Dims::new(n, n, n / 2 + 1), 96, 11));
    let ranks = 4u32;

    println!(
        "Ablation 1: blocks per process (jet-like {n}x{n}x{}, {ranks} ranks)\n",
        n / 2 + 1
    );
    let t = Table::new(&[
        "blocks/rank",
        "blocks",
        "compute max(s)",
        "merge max(s)",
        "total max(s)",
    ]);
    let mut runs = Vec::new();
    for bpr in [1u32, 2, 4] {
        let blocks = ranks * bpr;
        let params = PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::full_merge(blocks),
            trace: trace_enabled(),
            ..Default::default()
        };
        let r = run_parallel(&Input::Memory(field.clone()), ranks, blocks, &params, None).unwrap();
        if let Some(tr) = &r.trace {
            emit_trace(&format!("ablation_blocking_bpr{bpr}"), tr);
        }
        let max = |f: fn(&msp_telemetry::RankReport) -> f64| {
            r.telemetry.ranks.iter().map(f).fold(0.0, f64::max)
        };
        t.row(&[
            format!("{bpr}"),
            format!("{blocks}"),
            format!(
                "{:.4}",
                max(|t| {
                    t.phase_seconds("gradient").unwrap_or(0.0)
                        + t.phase_seconds("trace").unwrap_or(0.0)
                })
            ),
            format!("{:.4}", max(|t| t.merge_seconds())),
            format!("{:.4}", max(|t| t.phase_seconds("total").unwrap_or(0.0))),
        ]);
        runs.push((format!("bpr{bpr}"), r));
    }
    let series: Vec<(String, &msp_core::RunResult)> =
        runs.iter().map(|(l, r)| (l.clone(), r)).collect();
    emit_run_series("ablation_blocking", &series);

    println!("\nAblation 2: boundary-restriction overhead (spurious critical cells)\n");
    let t = Table::new(&["blocks", "critical cells", "overhead vs serial"]);
    let mut serial_count = 0u64;
    for blocks in [1u32, 8, 64] {
        let d = Decomposition::bisect(field.dims(), blocks);
        let total: u64 = d
            .blocks()
            .iter()
            .map(|b| {
                let g = msp_morse::assign_gradient(&field.extract_block(b), &d);
                g.critical_cells()
                    .iter()
                    .filter(|&&c| d.owners(c).as_slice()[0] == b.id)
                    .count() as u64
            })
            .sum();
        if blocks == 1 {
            serial_count = total;
        }
        t.row(&[
            format!("{blocks}"),
            format!("{total}"),
            format!("{:.2}x", total as f64 / serial_count as f64),
        ]);
    }
    println!(
        "\nThe spurious cells are zero-persistence by construction and are\n\
         cancelled during the merge stage — Fig 4 demonstrates full recovery."
    );
}
