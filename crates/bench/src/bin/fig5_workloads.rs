//! Fig 5 — the synthetic complexity family: generate the sinusoidal
//! dataset at three complexities and report the resulting MS-complex
//! population (the quantitative counterpart of the paper's volume
//! renderings).
//!
//! ```text
//! cargo run --release -p msp-bench --bin fig5_workloads
//! MSP_SCALE=small cargo run --release -p msp-bench --bin fig5_workloads
//! ```

use msp_bench::{emit_sim_series, fmt_bytes, Scale, Table};
use msp_core::{MergePlan, SimParams};

fn main() {
    let scale = Scale::from_env();
    let size = scale.pick(33u32, 65, 129);
    let complexities: &[u32] = &[4, 8, 16];
    println!("Fig 5 analogue: sinusoid {size}^3, complexity sweep\n");
    let t = Table::new(&[
        "cmplx", "expected", "minima", "1-sad", "2-sad", "maxima", "arcs", "out size",
    ]);
    let mut sims = Vec::new();
    for &c in complexities {
        let field = msp_synth::sinusoid(size, c);
        let params = SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            ..Default::default()
        };
        let r = msp_core::simulate(&field, 1, &params).unwrap();
        // census from a serial run (one block)
        let pipeline = msp_core::run_parallel(
            &msp_core::Input::Memory(std::sync::Arc::new(field)),
            1,
            1,
            &msp_core::PipelineParams {
                persistence_frac: 0.01,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let census = pipeline.outputs[0].node_census();
        t.row(&[
            format!("{c}"),
            format!("{}", msp_synth::sinusoid::expected_extrema(c)),
            format!("{}", census[0]),
            format!("{}", census[1]),
            format!("{}", census[2]),
            format!("{}", census[3]),
            format!("{}", r.live_arcs),
            fmt_bytes(r.output_bytes),
        ]);
        sims.push((format!("complexity{c}"), r));
    }
    emit_sim_series("fig5_workloads", &sims);
    println!(
        "\nDoubling the complexity per side multiplies the feature count by\n\
         ~8 (c^3 growth) while the grid size stays fixed — the workload\n\
         axis of Fig 6's horizontal panels."
    );
}
