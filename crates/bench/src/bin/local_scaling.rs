//! Local-stage scaling: intra-rank thread sweep of the gradient + trace
//! (+ read, + simplify) phases on one rank, with a bit-exactness gate.
//!
//! For each thread count the same fig6-style sinusoid volume runs
//! through the full pipeline on a single rank; per-phase wall-clock
//! comes from the telemetry report (whose parallel-stage buckets hold
//! the interval-union of thread-local spans, i.e. true wall clock), and
//! every run's merged output must be **byte-identical** to the
//! `threads = 1` baseline — the determinism contract of the parallel
//! local stage.
//!
//! Emits `results/BENCH_local.json` (and re-parses it as a schema
//! self-check). Knobs:
//!
//! * `MSP_SCALE=small|default|large` — volume size;
//! * `MSP_THREADS=1,2,4` — comma list of thread counts (default
//!   `1,2,4,8`);
//! * `MSP_KERNEL=heap` — escape hatch running the whole sweep on the
//!   pre-rework two-heap/recursive kernels instead of the flat SoA
//!   path; the active side is recorded in the `kernel` column so a
//!   differential run is self-describing;
//! * `MSP_ASSERT_SPEEDUP=1` — additionally require that threads=2 does
//!   not regress below serial (≥1.0× gradient+trace on hosts with ≥2
//!   CPUs; on a 1-CPU host the sweep is pure oversubscription, so the
//!   2-thread point is reported but not gated) and ≥2.5× speedup at 4
//!   threads (skipped, with a note, on hosts exposing fewer than 4
//!   CPUs, where wall-clock speedup is physically impossible — the
//!   emitted `host_parallelism` field records this).
//!
//! ```text
//! cargo run --release -p msp-bench --bin local_scaling
//! ```

use msp_bench::{results_dir, Scale, Table};
use msp_complex::wire;
use msp_core::{run_parallel, Input, MergePlan, PipelineParams, RunResult};
use msp_grid::par::available_threads;
use msp_telemetry::Json;
use std::sync::Arc;

const BLOCKS: u32 = 8;

fn phase(r: &RunResult, key: &str) -> f64 {
    r.telemetry
        .ranks
        .iter()
        .map(|rk| rk.phase_seconds(key).unwrap_or(0.0))
        .sum()
}

fn main() {
    let scale = Scale::from_env();
    let size = scale.pick(25, 65, 97);
    let complexity = scale.pick(2, 4, 4);
    let threads: Vec<usize> = match std::env::var("MSP_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| panic!("bad MSP_THREADS entry '{t}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    };

    let field = Arc::new(msp_synth::sinusoid(size, complexity));
    let input = Input::Memory(field);
    let host = available_threads();
    let kernel = msp_morse::active_kernel().name();
    println!(
        "local-stage scaling: sinusoid {size}^3 complexity {complexity}, \
         1 rank x {BLOCKS} blocks, threads {threads:?}, kernel {kernel}, \
         host parallelism {host}\n"
    );
    let max_t = threads.iter().copied().max().unwrap_or(1);
    if host < max_t {
        println!(
            "note: host exposes only {host} CPU(s); with oversubscribed threads the \
             speedup column measures scheduling overhead, not parallel speedup\n"
        );
    }

    let run = |t: usize| -> RunResult {
        let params = PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::full_merge(BLOCKS),
            threads: Some(t),
            ..Default::default()
        };
        let r = run_parallel(&input, 1, BLOCKS, &params, None)
            .unwrap_or_else(|e| panic!("run with {t} thread(s) failed: {e}"));
        // With MSP_CHECK=1 the pipeline runs the oracle invariant
        // checker; a bench sweep must come back violation-free.
        for key in [
            "check_structural",
            "check_euler",
            "check_boundary",
            "check_vpath",
        ] {
            assert_eq!(
                r.telemetry.counter_total(key),
                0,
                "oracle counter {key} nonzero with {t} thread(s)"
            );
        }
        r
    };

    let table = Table::new(&[
        "threads", "kernel", "read_s", "grad_s", "trace_s", "simpl_s", "total_s", "speedup",
    ]);
    let mut baseline_wire: Option<bytes::Bytes> = None;
    let mut baseline_gt: f64 = 0.0;
    let mut rows: Vec<Json> = Vec::new();
    let mut speedup_at = Vec::new();
    for &t in &threads {
        let r = run(t);
        let encoded = wire::serialize(&r.outputs[0]);
        match &baseline_wire {
            None => {
                // the sweep's first entry is the reference; sweeps should
                // start at 1 so the reference is the serial path
                assert_eq!(t, threads[0]);
                baseline_wire = Some(encoded);
            }
            Some(base) => assert_eq!(
                *base, encoded,
                "output with {t} thread(s) diverged from {} thread(s) — \
                 the parallel local stage must be bit-exact",
                threads[0]
            ),
        }
        let (read, grad, trc, simpl, total) = (
            phase(&r, "read"),
            phase(&r, "gradient"),
            phase(&r, "trace"),
            phase(&r, "simplify"),
            phase(&r, "total"),
        );
        let gt = grad + trc;
        if t == threads[0] {
            baseline_gt = gt;
        }
        let speedup = if gt > 0.0 { baseline_gt / gt } else { 1.0 };
        speedup_at.push((t, speedup));
        table.row(&[
            format!("{t}"),
            kernel.to_string(),
            format!("{read:.4}"),
            format!("{grad:.4}"),
            format!("{trc:.4}"),
            format!("{simpl:.4}"),
            format!("{total:.4}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(Json::obj(vec![
            ("threads", Json::U64(t as u64)),
            ("kernel", Json::str(kernel)),
            ("read_s", Json::F64(read)),
            ("gradient_s", Json::F64(grad)),
            ("trace_s", Json::F64(trc)),
            ("simplify_s", Json::F64(simpl)),
            ("total_s", Json::F64(total)),
            ("speedup_grad_trace", Json::F64(speedup)),
            ("bit_exact_vs_first", Json::Bool(true)),
        ]));
    }
    println!(
        "\nall {} runs produced byte-identical output",
        threads.len()
    );

    let doc = Json::obj(vec![
        ("kind", Json::str("local_scaling")),
        ("kernel", Json::str(kernel)),
        ("volume", Json::str(format!("sinusoid_{size}_{complexity}"))),
        ("blocks", Json::U64(BLOCKS as u64)),
        ("host_parallelism", Json::U64(host as u64)),
        ("runs", Json::Arr(rows)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_local.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_local.json");
    println!("bench written to {}", path.display());

    // schema self-check: the emitted document must round-trip
    let text = std::fs::read_to_string(&path).expect("read back BENCH_local.json");
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} does not re-parse: {e}", path.display()));
    let Json::Obj(top) = &parsed else {
        panic!("BENCH_local.json top level is not an object");
    };
    let n_runs = top
        .iter()
        .find(|(k, _)| k == "runs")
        .map(|(_, v)| match v {
            Json::Arr(a) => a.len(),
            _ => panic!("runs is not an array"),
        })
        .expect("runs present");
    assert_eq!(n_runs, threads.len(), "round-trip preserves the sweep");
    println!("schema self-check OK ({n_runs} runs)");

    if std::env::var("MSP_ASSERT_SPEEDUP").as_deref() == Ok("1") {
        match speedup_at.iter().find(|(t, _)| *t == 2) {
            Some((_, s2)) if host >= 2 => {
                assert!(
                    *s2 >= 1.0,
                    "gradient+trace at 2 threads regressed to {s2:.2}x of serial \
                     — pooled slab buffers must keep the parallel path free"
                );
                println!("no-regression gate OK ({s2:.2}x at 2 threads)");
            }
            Some((_, s2)) => println!(
                "no-regression gate SKIPPED: host exposes {host} CPU(s), \
                 2 threads is pure oversubscription (measured {s2:.2}x)"
            ),
            None => {}
        }
        if host < 4 {
            println!(
                "speedup gate SKIPPED: host exposes {host} CPU(s), \
                 4-thread wall-clock speedup needs at least 4"
            );
        } else {
            let s4 = speedup_at
                .iter()
                .find(|(t, _)| *t == 4)
                .map(|(_, s)| *s)
                .expect("MSP_ASSERT_SPEEDUP needs 4 in the thread sweep");
            assert!(
                s4 >= 2.5,
                "gradient+trace speedup at 4 threads is {s4:.2}x, expected >= 2.5x"
            );
            println!("speedup gate OK ({s4:.2}x at 4 threads)");
        }
    }
}
