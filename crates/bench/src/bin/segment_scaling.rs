//! Segmentation scaling: rank sweep of the Morse-Smale segmentation
//! stages — measured local label propagation (`segment` phase) against
//! the distributed pointer-jump resolution (`seg_resolve` phase) — with
//! a bit-exactness gate.
//!
//! For each rank count the same fig6-style sinusoid volume runs through
//! the full pipeline with `--segment` on; per-phase wall-clock comes
//! from the telemetry report, the resolution's rounds-to-fixed-point
//! and boundary traffic come from its counters, and every run's
//! resolved labeled volume must be **byte-identical** to the 1-rank
//! baseline — the determinism contract of distributed path compression
//! (DESIGN.md §11).
//!
//! Emits `results/BENCH_segment.json` (and re-parses it as a schema
//! self-check). Knobs:
//!
//! * `MSP_SCALE=small|default|large` — volume size;
//! * `MSP_RANKS=1,2,4` — comma list of rank counts (default `1,2,4,8`;
//!   each must divide the block count);
//! * `MSP_CHECK=1` — run the oracle invariant checker inside every run
//!   (the sweep then fails on any nonzero violation counter).
//!
//! ```text
//! cargo run --release -p msp-bench --bin segment_scaling
//! ```

use msp_bench::{results_dir, Scale, Table};
use msp_core::{run_parallel, Input, MergePlan, PipelineParams, RunResult};
use msp_segment::{jump_round_bound, wire as segwire};
use msp_telemetry::Json;
use std::sync::Arc;

const BLOCKS: u32 = 8;

/// Wall-clock of one phase summed over ranks (parallel-stage buckets
/// hold the interval-union of thread-local spans).
fn phase(r: &RunResult, key: &str) -> f64 {
    r.telemetry
        .ranks
        .iter()
        .map(|rk| rk.phase_seconds(key).unwrap_or(0.0))
        .sum()
}

fn main() {
    let scale = Scale::from_env();
    let size = scale.pick(25, 65, 97);
    let complexity = scale.pick(2, 4, 4);
    let ranks: Vec<u32> = match std::env::var("MSP_RANKS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1 && BLOCKS.is_multiple_of(n))
                    .unwrap_or_else(|| panic!("bad MSP_RANKS entry '{t}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    };

    let field = Arc::new(msp_synth::sinusoid(size, complexity));
    let input = Input::Memory(field);
    println!(
        "segmentation scaling: sinusoid {size}^3 complexity {complexity}, \
         {BLOCKS} blocks, ranks {ranks:?}\n"
    );

    let run = |n: u32| -> RunResult {
        let params = PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::full_merge(BLOCKS),
            segment: true,
            ..Default::default()
        };
        let r = run_parallel(&input, n, BLOCKS, &params, None)
            .unwrap_or_else(|e| panic!("run with {n} rank(s) failed: {e}"));
        // With MSP_CHECK=1 the pipeline runs the oracle invariant
        // checker; a bench sweep must come back violation-free.
        for key in [
            "check_structural",
            "check_euler",
            "check_boundary",
            "check_vpath",
            "check_segment",
        ] {
            assert_eq!(
                r.telemetry.counter_total(key),
                0,
                "oracle counter {key} nonzero with {n} rank(s)"
            );
        }
        r
    };

    let table = Table::new(&[
        "ranks",
        "label_s",
        "resolve_s",
        "rounds",
        "forwards",
        "boundary_B",
        "total_s",
    ]);
    let mut baseline: Option<Vec<bytes::Bytes>> = None;
    let mut baseline_rounds = 0u64;
    let mut rows: Vec<Json> = Vec::new();
    for &n in &ranks {
        let r = run(n);
        let encoded: Vec<bytes::Bytes> = r.segmentation.iter().map(segwire::serialize).collect();
        let rounds = r.telemetry.ranks[0].counter("seg_rounds");
        match &baseline {
            None => {
                // the sweep's first entry is the reference; sweeps
                // should start at 1 so the reference is the serial path
                assert_eq!(n, ranks[0]);
                baseline = Some(encoded);
                baseline_rounds = rounds;
            }
            Some(base) => {
                assert_eq!(
                    base.len(),
                    encoded.len(),
                    "seg block count with {n} rank(s) diverged"
                );
                for (i, (b, e)) in base.iter().zip(&encoded).enumerate() {
                    assert_eq!(
                        b, e,
                        "seg block {i} with {n} rank(s) diverged from {} rank(s) — \
                         distributed path compression must be bit-exact",
                        ranks[0]
                    );
                }
                assert_eq!(
                    rounds, baseline_rounds,
                    "rounds-to-fixed-point with {n} rank(s) diverged — \
                     the jump evolution is partition-independent"
                );
            }
        }
        let forwards = r.telemetry.counter_total("seg_forwards");
        assert!(
            rounds <= jump_round_bound(forwards),
            "{rounds} rounds exceeds the pointer-jumping bound {} for {forwards} forwards",
            jump_round_bound(forwards)
        );
        let bytes = r.telemetry.counter_total("seg_boundary_bytes");
        let (label, resolve, total) = (
            phase(&r, "segment"),
            phase(&r, "seg_resolve"),
            phase(&r, "total"),
        );
        table.row(&[
            format!("{n}"),
            format!("{label:.4}"),
            format!("{resolve:.4}"),
            format!("{rounds}"),
            format!("{forwards}"),
            format!("{bytes}"),
            format!("{total:.4}"),
        ]);
        rows.push(Json::obj(vec![
            ("ranks", Json::U64(n as u64)),
            ("label_s", Json::F64(label)),
            ("resolve_s", Json::F64(resolve)),
            ("rounds", Json::U64(rounds)),
            ("forwards", Json::U64(forwards)),
            ("boundary_bytes", Json::U64(bytes)),
            ("total_s", Json::F64(total)),
            ("bit_exact_vs_first", Json::Bool(true)),
        ]));
    }
    println!(
        "\nall {} runs produced byte-identical labeled volumes \
         ({baseline_rounds} jump round(s) at every rank count)",
        ranks.len()
    );

    let doc = Json::obj(vec![
        ("kind", Json::str("segment_scaling")),
        ("volume", Json::str(format!("sinusoid_{size}_{complexity}"))),
        ("blocks", Json::U64(BLOCKS as u64)),
        ("runs", Json::Arr(rows)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_segment.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_segment.json");
    println!("bench written to {}", path.display());

    // schema self-check: the emitted document must round-trip
    let text = std::fs::read_to_string(&path).expect("read back BENCH_segment.json");
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} does not re-parse: {e}", path.display()));
    let Json::Obj(top) = &parsed else {
        panic!("BENCH_segment.json top level is not an object");
    };
    let n_runs = top
        .iter()
        .find(|(k, _)| k == "runs")
        .map(|(_, v)| match v {
            Json::Arr(a) => a.len(),
            _ => panic!("runs is not an array"),
        })
        .expect("runs present");
    assert_eq!(n_runs, ranks.len(), "round-trip preserves the sweep");
    println!("schema self-check OK ({n_runs} runs)");
}
