//! Fault-tolerance overhead sweep on the Fig-9 jet workload: wall time
//! of the threaded pipeline as the injected crash rate rises from 0 to
//! 10%, against a checkpoint-free baseline.
//!
//! ```text
//! cargo run --release -p msp-bench --bin fault_sweep
//! ```
//!
//! Two claims are measured: (1) checkpointing alone (fault rate 0) costs
//! little — the acceptance bar is <15% over baseline; (2) recovered runs
//! stay *bit-identical* to the fault-free result while paying only the
//! detection deadline + replay cost per crash.

use msp_bench::{emit_doc, emit_trace, trace_enabled, Scale, Table};
use msp_core::{run_parallel, FaultConfig, Input, MergePlan, PipelineParams};
use msp_fault::FaultPlan;
use msp_grid::Dims;
use msp_telemetry::Json;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RANKS: u32 = 8;
const ROUNDS: &[u32] = &[2, 2, 2]; // 8 blocks -> 1, three cut points

fn main() {
    let scale = Scale::from_env();
    let s = scale.pick(24u32, 12, 6);
    let dims = Dims::new(768 / s, 896 / s, 512 / s);
    let field = Arc::new(msp_synth::jet(dims, 160, 2012));
    let input = Input::Memory(field);
    println!(
        "fault sweep: jet-like {}x{}x{}, {} ranks, merge radices {:?}\n",
        dims.nx, dims.ny, dims.nz, RANKS, ROUNDS
    );

    let deadline = Duration::from_millis(250);
    let base_params = PipelineParams {
        persistence_frac: 0.01,
        plan: MergePlan::rounds(ROUNDS.to_vec()),
        trace: trace_enabled(),
        ..Default::default()
    };

    // checkpoint-free baseline
    let t0 = Instant::now();
    let baseline = run_parallel(&input, RANKS, RANKS, &base_params, None)
        .unwrap_or_else(|e| panic!("baseline run failed: {e}"));
    let base_s = t0.elapsed().as_secs_f64();
    let reference: Vec<_> = baseline
        .outputs
        .iter()
        .map(msp_complex::wire::serialize)
        .collect();

    let t = Table::new(&[
        "fault rate",
        "wall(s)",
        "overhead(%)",
        "crashes",
        "retries",
        "replayed",
        "ckpt bytes",
        "identical",
    ]);
    t.row(&[
        "baseline".into(),
        format!("{base_s:.3}"),
        "-".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "ref".into(),
    ]);

    let mut runs = Vec::new();
    for rate in [0.0f64, 0.02, 0.05, 0.10] {
        let plan = (rate > 0.0)
            .then(|| FaultPlan::seeded_crashes(2012, RANKS as usize, ROUNDS.len() as u32, rate));
        let params = PipelineParams {
            fault: FaultConfig {
                plan,
                checkpoint: true,
                deadline,
            },
            ..base_params.clone()
        };
        let t1 = Instant::now();
        let r = run_parallel(&input, RANKS, RANKS, &params, None)
            .unwrap_or_else(|e| panic!("faulty run (rate {rate}) failed: {e}"));
        let wall_s = t1.elapsed().as_secs_f64();
        let overhead = 100.0 * (wall_s - base_s) / base_s;
        let identical = r.outputs.len() == reference.len()
            && r.outputs
                .iter()
                .zip(&reference)
                .all(|(c, want)| msp_complex::wire::serialize(c) == *want);
        let tel = &r.telemetry;
        let label = format!("{:.0}%", rate * 100.0);
        t.row(&[
            label.clone(),
            format!("{wall_s:.3}"),
            format!("{overhead:+.1}"),
            format!("{}", tel.counter_total("crashes")),
            format!("{}", tel.counter_total("retries")),
            format!("{}", tel.counter_total("rounds_replayed")),
            format!("{}", tel.counter_total("checkpoint_bytes")),
            if identical { "yes" } else { "NO" }.into(),
        ]);
        if let Some(tr) = &r.trace {
            emit_trace(&format!("fault_sweep_{:.0}pct", rate * 100.0), tr);
        }
        runs.push(Json::obj(vec![
            ("rate", Json::F64(rate)),
            ("wall_s", Json::F64(wall_s)),
            ("overhead_pct", Json::F64(overhead)),
            ("crashes", Json::U64(tel.counter_total("crashes"))),
            ("retries", Json::U64(tel.counter_total("retries"))),
            (
                "rounds_replayed",
                Json::U64(tel.counter_total("rounds_replayed")),
            ),
            (
                "blocks_absorbed",
                Json::U64(tel.counter_total("blocks_absorbed")),
            ),
            (
                "checkpoint_bytes",
                Json::U64(tel.counter_total("checkpoint_bytes")),
            ),
            ("recovery_ms", Json::U64(tel.counter_total("recovery_ms"))),
            ("bit_identical", Json::Bool(identical)),
        ]));
    }

    let doc = Json::obj(vec![
        ("version", Json::U64(msp_telemetry::REPORT_VERSION as u64)),
        ("kind", Json::str("fault_sweep")),
        ("name", Json::str("fault_sweep")),
        (
            "workload",
            Json::str(format!("jet {}x{}x{}", dims.nx, dims.ny, dims.nz)),
        ),
        ("ranks", Json::U64(RANKS as u64)),
        (
            "merge_radices",
            Json::Arr(ROUNDS.iter().map(|&r| Json::U64(r as u64)).collect()),
        ),
        ("deadline_ms", Json::U64(deadline.as_millis() as u64)),
        ("baseline_wall_s", Json::F64(base_s)),
        ("runs", Json::Arr(runs)),
    ]);
    emit_doc("fault_sweep", &doc);
    println!(
        "\nExpected shape: the rate-0 row is pure checkpoint overhead\n\
         (<15% is the acceptance bar); each crash then adds roughly the\n\
         {}ms detection deadline plus one round replay, and every\n\
         recovered run stays bit-identical to the baseline.",
        deadline.as_millis()
    );
}
