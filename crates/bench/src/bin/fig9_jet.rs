//! Fig 9 — strong scaling on the jet mixture-fraction dataset: overall
//! time and the four components (read, compute, merge, write) across a
//! range of process counts, with a full merge using radix-8-preferred
//! plans — the paper's worst-case configuration.
//!
//! ```text
//! cargo run --release -p msp-bench --bin fig9_jet
//! ```

use msp_bench::{efficiency, emit_sim_series, emit_trace, fmt_bytes, trace_enabled, Scale, Table};
use msp_core::{MergePlan, SimParams};
use msp_grid::Dims;

fn main() {
    let scale = Scale::from_env();
    // paper: 768 x 896 x 512, 32..8192 procs. Keep the aspect ratio.
    let s = scale.pick(16u32, 4, 2);
    let dims = Dims::new(768 / s, 896 / s, 512 / s);
    let ranks: Vec<u32> = match scale {
        Scale::Small => vec![8, 32, 128],
        Scale::Default => vec![32, 128, 512, 2048],
        Scale::Large => vec![32, 128, 512, 2048, 8192],
    };
    let field = msp_synth::jet(dims, 160, 2012);
    println!(
        "Fig 9 analogue: jet-like {}x{}x{} ({}), full merge, radix-8-preferred\n",
        dims.nx,
        dims.ny,
        dims.nz,
        fmt_bytes(dims.n_verts() * 4)
    );
    let t = Table::new(&[
        "ranks",
        "read(s)",
        "compute(s)",
        "merge(s)",
        "write(s)",
        "total(s)",
        "eff(%)",
        "out size",
    ]);
    let mut base: Option<(u32, f64)> = None;
    let mut sims = Vec::new();
    for &p in &ranks {
        let params = SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::full_merge(p),
            trace: trace_enabled(),
            ..Default::default()
        };
        let r = msp_core::simulate(&field, p, &params).unwrap();
        if let Some(tr) = &r.trace {
            emit_trace(&format!("fig9_jet_p{p}"), tr);
        }
        let eff = match base {
            None => {
                base = Some((p, r.total_s));
                100.0
            }
            Some((p0, t0)) => 100.0 * efficiency(p0, t0, p, r.total_s),
        };
        t.row(&[
            format!("{p}"),
            format!("{:.4}", r.read_s),
            format!("{:.4}", r.compute_s),
            format!("{:.4}", r.merge_s),
            format!("{:.4}", r.write_s),
            format!("{:.4}", r.total_s),
            format!("{:.1}", eff),
            fmt_bytes(r.output_bytes),
        ]);
        sims.push((format!("p{p}"), r));
    }
    emit_sim_series("fig9_jet", &sims);
    println!(
        "\nExpected shape (paper §VI-D1): compute dominates at small P and\n\
         falls ~1/P; merge time grows at large P and takes over; efficiency\n\
         decays to tens of percent at the largest counts (paper: 35% at\n\
         2048, 13% at 8192 for a full merge)."
    );
}
