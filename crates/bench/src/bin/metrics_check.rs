//! End-to-end metrics agreement check: one server, three exposition
//! paths, one truth.
//!
//! Builds a small in-memory dataset, serves it over a real TCP
//! listener, drives a mixed query workload through the line-JSON
//! protocol, then reads the same counters back through all three
//! surfaces the live registry exports:
//!
//! 1. `GET /metrics` — Prometheus text format, parsed here line by
//!    line (every sample must parse, histogram `_bucket` series must
//!    be cumulative with the `+Inf` bucket equal to `_count`);
//! 2. `{"op":"metrics"}` — the JSON snapshot;
//! 3. the final [`ServerCore::report`] — the versioned `RunReport`
//!    written at shutdown.
//!
//! All three must agree on `serve_queries` / `serve_hits` /
//! `serve_errors` within 1% (absolute slack of 1 absorbs the
//! documented in-flight off-by-one: a metrics op builds its reply
//! before it is itself counted). Any violation panics, so the script
//! harnesses treat this binary as a pass/fail gate.
//!
//! ```text
//! cargo run --release -p msp-bench --bin metrics_check
//! ```

use msp_core::{run_parallel, Dataset, Input, MergePlan, PipelineParams, ServeConfig, ServerCore};
use msp_telemetry::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const BLOCKS: u32 = 8;

fn field_of(j: &Json, key: &str) -> Json {
    let Json::Obj(pairs) = j else {
        panic!("expected object around {key}")
    };
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing field {key}"))
}

fn counter_of(metrics: &Json, name: &str) -> f64 {
    match field_of(&field_of(metrics, "counters"), name) {
        Json::U64(n) => n as f64,
        Json::F64(v) => v,
        other => panic!("counter {name} is not a number: {other:?}"),
    }
}

/// `|a - b| <= max(1, 1% of scale)` — the agreement contract.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= (0.01 * a.abs().max(b.abs())).max(1.0)
}

/// One line-JSON exchange on an existing connection.
fn ask(reader: &mut impl BufRead, writer: &mut impl Write, line: &str) -> String {
    writeln!(writer, "{line}").expect("send request");
    writer.flush().expect("flush request");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    resp.trim_end().to_string()
}

/// Plain HTTP/1.1 GET against the same listener, returning
/// `(status_line, body)`.
fn http_get(addr: &std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect for GET");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send GET");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read HTTP response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in response to GET {path}"));
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Parse Prometheus text format into `identifier -> value`, where the
/// identifier keeps its label set verbatim (`name{a="b"}`). Every
/// non-comment, non-blank line must be `<identifier> <float>`.
fn parse_prometheus(text: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparsable exposition line: {line}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value in line: {line}"));
        if out.insert(id.to_string(), value).is_some() {
            panic!("duplicate sample {id} in exposition");
        }
    }
    out
}

fn main() {
    // ---- ingest: small in-memory dataset with a hierarchy ----
    let input = Input::Memory(Arc::new(msp_synth::sinusoid(17, 3)));
    let params = PipelineParams {
        persistence_frac: 0.0,
        plan: MergePlan::full_merge(BLOCKS),
        segment: true,
        hierarchy: true,
        ..Default::default()
    };
    let r = run_parallel(&input, 2, BLOCKS, &params, None).expect("pipeline run");
    let keys: Vec<f32> = r.hierarchies[0]
        .difference
        .iter()
        .map(|rec| rec.key)
        .collect();
    assert!(!keys.is_empty(), "hierarchy recorded no cancellations");
    let dataset = Dataset {
        name: "check".to_string(),
        bases: r.outputs.clone(),
        hierarchies: r.hierarchies.clone(),
        segs: r.segmentation.clone(),
    };

    // ---- serve over a real ephemeral-port listener ----
    let core = Arc::new(ServerCore::new(
        vec![dataset],
        ServeConfig {
            cache_capacity: 8,
            threads: 2,
            ..Default::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || msp_core::serve::serve_tcp(&core, listener))
    };

    // ---- workload: a mixed stream on one line-JSON connection ----
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let n_keys = keys.len();
    let mut sent = 0u64;
    let mut errors_sent = 0u64;
    for i in 0..60usize {
        let line = match i % 6 {
            // 4-key hot pool so the cache demonstrably hits
            0 | 1 => format!(
                "{{\"op\":\"threshold\",\"t\":{}}}",
                keys[(i % 4) * 7 % n_keys]
            ),
            2 => "{\"op\":\"ping\"}".to_string(),
            3 => format!(
                "{{\"op\":\"extrema\",\"t\":{},\"top\":3}}",
                keys[i % n_keys]
            ),
            4 => "{\"op\":\"health\"}".to_string(),
            _ => {
                errors_sent += 1;
                "{\"op\":\"no-such-op\"}".to_string()
            }
        };
        let resp = ask(&mut reader, &mut writer, &line);
        assert!(!resp.is_empty(), "empty response to {line}");
        sent += 1;
    }

    // ---- surface 1: the JSON metrics snapshot ----
    let metrics_resp = ask(&mut reader, &mut writer, "{\"op\":\"metrics\"}");
    sent += 1;
    let metrics = Json::parse(&metrics_resp).expect("metrics reply parses");
    let json_queries = counter_of(&metrics, "serve_queries");
    let json_hits = counter_of(&metrics, "serve_hits");
    let json_errors = counter_of(&metrics, "serve_errors");
    assert!(
        close(json_queries, sent as f64),
        "JSON serve_queries {json_queries} vs {sent} sent"
    );
    assert!(
        close(json_errors, errors_sent as f64),
        "JSON serve_errors {json_errors} vs {errors_sent} sent"
    );
    assert!(json_hits > 0.0, "repeated thresholds never hit the cache");

    // ---- surface 2: the Prometheus exposition ----
    let (status, body) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "GET /metrics -> {status}");
    let prom = parse_prometheus(&body);
    for (name, json_val) in [
        ("serve_queries", json_queries),
        ("serve_hits", json_hits),
        ("serve_errors", json_errors),
    ] {
        let prom_val = *prom
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"));
        assert!(
            close(prom_val, json_val),
            "{name}: exposition {prom_val} vs JSON snapshot {json_val}"
        );
    }
    // histogram structure: cumulative buckets, +Inf == _count
    let mut hist_families = 0usize;
    for class in ["threshold", "ping", "invalid"] {
        let series = format!("serve_latency_us{{class=\"{class}\"}}");
        let count = *prom
            .get(&format!("serve_latency_us_count{{class=\"{class}\"}}"))
            .unwrap_or_else(|| panic!("missing _count for {series}"));
        let mut buckets: Vec<(f64, f64)> = prom
            .iter()
            .filter(|(id, _)| {
                id.starts_with("serve_latency_us_bucket{") && id.contains(&format!("\"{class}\""))
            })
            .map(|(id, &v)| {
                let le = id
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.strip_suffix("\"}"))
                    .unwrap_or_else(|| panic!("no le label in {id}"));
                let le: f64 = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or_else(|_| panic!("bad le in {id}"))
                };
                (le, v)
            })
            .collect();
        assert!(!buckets.is_empty(), "no _bucket series for {series}");
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le ordering"));
        for w in buckets.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "{series}: cumulative buckets decrease at le={}",
                w[1].0
            );
        }
        let (last_le, last_cum) = *buckets.last().expect("non-empty buckets");
        assert!(
            last_le.is_infinite() && last_cum == count,
            "{series}: +Inf bucket {last_cum} != _count {count}"
        );
        hist_families += 1;
    }

    // ---- surface 3: the final shutdown report ----
    let bye = ask(&mut reader, &mut writer, "{\"op\":\"shutdown\"}");
    sent += 1;
    assert!(bye.contains("\"ok\":true"), "shutdown failed: {bye}");
    drop(writer);
    drop(reader);
    server
        .join()
        .expect("server thread")
        .expect("serve_tcp exit");
    let report = core.report("metrics_check");
    for (name, json_val) in [
        ("serve_queries", sent as f64),
        ("serve_hits", json_hits),
        ("serve_errors", json_errors),
    ] {
        let rep_val = report.counter_total(name) as f64;
        assert!(
            close(rep_val, json_val),
            "{name}: report {rep_val} vs expected {json_val}"
        );
    }

    println!(
        "metrics check OK: {} queries, {} exposition sample(s), {} histogram family(ies) \
         cumulative-consistent, report/json/prometheus counters agree within 1%",
        sent,
        prom.len(),
        hist_families
    );
}
