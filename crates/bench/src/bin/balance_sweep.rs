//! Load-balance sweep: uniform bisection + block-cyclic assignment vs
//! the adaptive feature-density splitter + LPT assignment (DESIGN.md
//! §14) on the jet-like mixture-fraction field.
//!
//! Both layouts are costed with the **same** model — the per-vertex
//! feature-weight integral over each block (`feature_weights` +
//! `Decomposition::block_costs`) — so the comparison is apples to
//! apples: it measures what the decomposition and assignment policies
//! do to the estimated local-stage work per rank, not what cost proxy
//! each policy happens to record. Per-rank loads go through the
//! telemetry `aggregate` (min/mean/max/imbalance, imbalance = max/mean)
//! and the sweep **gates** on the adaptive imbalance being strictly
//! below uniform at every swept rank count — the jet field's feature
//! density is skewed, so block-cyclic over equal-volume blocks must
//! leave measurable imbalance on the table.
//!
//! One real pipeline run (`--decomp adaptive`) cross-checks the
//! computed loads against the `assign_cost` counter statistics the
//! telemetry layer aggregated across ranks.
//!
//! The deferred multicore speedup gate from ROADMAP item 1 rides along:
//! when the host exposes >= 4 CPUs the sweep times gradient+trace at 1
//! vs 4 threads on the same field and requires >= 2.5x; on smaller
//! hosts the gate is skipped and the JSON records that honestly.
//!
//! Emits `results/BENCH_balance.json` (and re-parses it as a schema
//! self-check). Knobs:
//!
//! * `MSP_SCALE=small|default|large` — volume size;
//! * `MSP_RANKS=2,3,4` — comma list of rank counts (default `2,3,4`);
//! * `MSP_ASSERT_SPEEDUP` is implied: the gate runs whenever the host
//!   can support it.
//!
//! ```text
//! cargo run --release -p msp-bench --bin balance_sweep
//! ```

use msp_bench::{results_dir, Scale, Table};
use msp_core::{feature_weights, run_parallel, Assignment, DecompMode, Input, PipelineParams};
use msp_grid::par::available_threads;
use msp_grid::{Decomposition, ScalarField};
use msp_telemetry::{aggregate, Agg, Json};
use std::sync::Arc;

const BLOCKS: u32 = 8;

fn agg_json(a: Agg) -> Json {
    Json::obj(vec![
        ("min", Json::F64(a.min)),
        ("mean", Json::F64(a.mean)),
        ("max", Json::F64(a.max)),
        ("imbalance", Json::F64(a.imbalance)),
    ])
}

/// Per-rank estimated-cost aggregate of one (decomposition, assignment)
/// pair under the shared feature-weight cost model.
fn layout_loads(d: &Decomposition, a: &Assignment, weights: &[u64], ranks: u32) -> (Vec<u64>, Agg) {
    let costs = d.block_costs(weights);
    let loads = a.loads(&costs, ranks);
    let series: Vec<f64> = loads.iter().map(|&v| v as f64).collect();
    let agg = aggregate(&series);
    (loads, agg)
}

/// Gradient+trace seconds of one pipeline run at a thread budget.
fn grad_trace_seconds(input: &Input, threads: usize) -> f64 {
    let params = PipelineParams {
        persistence_frac: 0.01,
        decomp: DecompMode::Adaptive,
        threads: Some(threads),
        ..Default::default()
    };
    let r = run_parallel(input, 1, BLOCKS, &params, None)
        .unwrap_or_else(|e| panic!("speedup run with {threads} thread(s) failed: {e}"));
    ["gradient", "trace"]
        .iter()
        .map(|key| {
            r.telemetry
                .ranks
                .iter()
                .map(|rk| rk.phase_seconds(key).unwrap_or(0.0))
                .sum::<f64>()
        })
        .sum()
}

fn main() {
    let scale = Scale::from_env();
    let sd = scale.pick(32, 8, 4);
    let dims = msp_synth::jet::jet_dims(sd);
    let modes = scale.pick(40, 160, 160);
    let ranks_list: Vec<u32> = match std::env::var("MSP_RANKS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| (1..=BLOCKS).contains(&n))
                    .unwrap_or_else(|| panic!("bad MSP_RANKS entry '{t}'"))
            })
            .collect(),
        Err(_) => vec![2, 3, 4],
    };
    let host = available_threads();

    let field: Arc<ScalarField> = Arc::new(msp_synth::jet(dims, modes, 2012));
    let weights = feature_weights(&field);
    println!(
        "balance sweep: jet-like {}x{}x{}, {BLOCKS} blocks, ranks {ranks_list:?}, \
         host parallelism {host}\n",
        dims.nx, dims.ny, dims.nz
    );

    let uniform_d = Decomposition::bisect(dims, BLOCKS);
    let adaptive_d = Decomposition::adaptive(dims, BLOCKS, &weights);
    let adaptive_costs = adaptive_d.block_costs(&weights);

    let table = Table::new(&[
        "ranks",
        "uniform_imb",
        "adaptive_imb",
        "uniform_max",
        "adaptive_max",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut last_adaptive_loads: Vec<u64> = Vec::new();
    for &n in &ranks_list {
        let (_, uni) = layout_loads(&uniform_d, &Assignment::round_robin(BLOCKS, n), &weights, n);
        let (loads, ada) = layout_loads(
            &adaptive_d,
            &Assignment::lpt(&adaptive_costs, n),
            &weights,
            n,
        );
        last_adaptive_loads = loads;
        if n >= 2 {
            assert!(
                ada.imbalance < uni.imbalance,
                "{n} ranks: adaptive imbalance {:.4} is not strictly below uniform {:.4}",
                ada.imbalance,
                uni.imbalance
            );
        }
        table.row(&[
            format!("{n}"),
            format!("{:.4}", uni.imbalance),
            format!("{:.4}", ada.imbalance),
            format!("{:.0}", uni.max),
            format!("{:.0}", ada.max),
        ]);
        rows.push(Json::obj(vec![
            ("ranks", Json::U64(n as u64)),
            ("uniform", agg_json(uni)),
            ("adaptive", agg_json(ada)),
            (
                "adaptive_beats_uniform",
                Json::Bool(ada.imbalance < uni.imbalance),
            ),
        ]));
    }
    println!("\nadaptive imbalance strictly below uniform at every swept rank count");

    // Cross-check: a real adaptive pipeline run must record per-rank
    // `assign_cost` whose telemetry aggregation matches the loads
    // computed above (same splitter, same LPT, same cost model).
    let check_ranks = *ranks_list.last().expect("at least one rank count");
    let input = Input::Memory(field.clone());
    let r = run_parallel(
        &input,
        check_ranks,
        BLOCKS,
        &PipelineParams {
            persistence_frac: 0.01,
            decomp: DecompMode::Adaptive,
            ..Default::default()
        },
        None,
    )
    .unwrap_or_else(|e| panic!("adaptive cross-check run failed: {e}"));
    let stat = r
        .telemetry
        .counter_stats
        .iter()
        .find(|s| s.key == "assign_cost")
        .expect("assign_cost counter aggregated");
    let want_min = *last_adaptive_loads.iter().min().unwrap();
    let want_max = *last_adaptive_loads.iter().max().unwrap();
    assert_eq!(
        (stat.min, stat.max),
        (want_min, want_max),
        "pipeline-recorded assign_cost diverged from the sched-layer loads"
    );
    println!(
        "telemetry cross-check OK: assign_cost min/max/imbalance = \
         {}/{}/{:.4} at {check_ranks} ranks",
        stat.min, stat.max, stat.imbalance
    );

    // Deferred multicore gate (ROADMAP item 1): measured when the host
    // can actually show wall-clock speedup, recorded honestly either way.
    let speedup = if host >= 4 {
        let s1 = grad_trace_seconds(&input, 1);
        let s4 = grad_trace_seconds(&input, 4);
        let sp = if s4 > 0.0 { s1 / s4 } else { 0.0 };
        assert!(
            sp >= 2.5,
            "gradient+trace speedup at 4 threads is {sp:.2}x, expected >= 2.5x"
        );
        println!("speedup gate OK ({sp:.2}x at 4 threads)");
        Json::obj(vec![
            ("measured", Json::Bool(true)),
            ("grad_trace_speedup_4t", Json::F64(sp)),
            ("gate", Json::str("ok")),
        ])
    } else {
        println!(
            "speedup gate SKIPPED: host exposes {host} CPU(s), \
             4-thread wall-clock speedup needs at least 4"
        );
        Json::obj(vec![
            ("measured", Json::Bool(false)),
            (
                "gate",
                Json::str(format!("skipped: host exposes {host} CPU(s)")),
            ),
        ])
    };

    let doc = Json::obj(vec![
        ("kind", Json::str("balance_sweep")),
        (
            "volume",
            Json::str(format!("jet_{}x{}x{}", dims.nx, dims.ny, dims.nz)),
        ),
        ("blocks", Json::U64(BLOCKS as u64)),
        ("host_parallelism", Json::U64(host as u64)),
        ("runs", Json::Arr(rows)),
        ("speedup", speedup),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_balance.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_balance.json");
    println!("bench written to {}", path.display());

    // schema self-check: the emitted document must round-trip
    let text = std::fs::read_to_string(&path).expect("read back BENCH_balance.json");
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} does not re-parse: {e}", path.display()));
    let Json::Obj(top) = &parsed else {
        panic!("BENCH_balance.json top level is not an object");
    };
    let n_runs = top
        .iter()
        .find(|(k, _)| k == "runs")
        .map(|(_, v)| match v {
            Json::Arr(a) => a.len(),
            _ => panic!("runs is not an array"),
        })
        .expect("runs present");
    assert_eq!(n_runs, ranks_list.len(), "round-trip preserves the sweep");
    println!("schema self-check OK ({n_runs} runs)");
}
