//! Table II — merge strategies for a full merge of 256 blocks: the same
//! reduction reached through different round/radix schedules. The paper's
//! finding: fewer rounds with higher radices win, and when a smaller
//! radix is unavoidable it should come early.
//!
//! ```text
//! cargo run --release -p msp-bench --bin table2_strategy
//! ```

use msp_bench::{emit_sim_series, Scale, Table};
use msp_core::{MergePlan, SimParams};

fn main() {
    let scale = Scale::from_env();
    let blocks = 256u32;
    let size = scale.pick(33u32, 49, 97);
    let complexity = scale.pick(4u32, 8, 16);
    let field = msp_synth::sinusoid(size, complexity);

    // the paper's five strategies for 256 -> 1
    let strategies: Vec<Vec<u32>> = vec![
        vec![4, 8, 8],
        vec![8, 8, 4],
        vec![4, 4, 2, 8],
        vec![4, 4, 4, 4],
        vec![2, 2, 2, 2, 2, 2, 2, 2],
    ];

    println!(
        "Table II analogue: full merge of {blocks} blocks (sinusoid {size}^3, complexity {complexity})\n"
    );
    let t = Table::new(&["rounds", "radices", "compute+merge (s)"]);
    let mut sims = Vec::new();
    for radices in &strategies {
        let plan = MergePlan::rounds(radices.clone());
        assert_eq!(plan.output_blocks(blocks), 1);
        let params = SimParams {
            persistence_frac: 0.01,
            plan,
            ..Default::default()
        };
        let r = msp_core::simulate(&field, blocks, &params).unwrap();
        t.row(&[
            format!("{}", radices.len()),
            radices
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.4}", r.compute_s + r.merge_s),
        ]);
        sims.push((
            radices
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            r,
        ));
    }
    emit_sim_series("table2_strategy", &sims);
    println!(
        "\nExpected ordering (paper §VI-C2): [4 8 8] <= [8 8 4] <= 4-round\n\
         plans <= eight rounds of radix-2; differences are small until the\n\
         round count grows."
    );
}
