//! Benchmark trend check: compare the current `results/BENCH_*.json`
//! documents against committed baselines and *warn* on large moves.
//!
//! The growth container has no stable performance envelope (shared
//! hardware, debug assertions, sanitizers come and go), so this is a
//! drift detector, not a gate: regressions over the 25% threshold are
//! printed prominently but the exit status is always 0. The value is
//! the diff in the log — a reviewer sees "qps fell 3x" next to the
//! change that did it.
//!
//! * `MSP_RESULTS_DIR`  — where the fresh documents live (default
//!   `results`);
//! * `MSP_BASELINE_DIR` — the committed reference copies (default
//!   `results/baselines`);
//! * `MSP_TREND_THRESHOLD` — relative change that triggers a warning
//!   (default `0.25`).
//!
//! Comparison walks both JSON trees in lockstep and compares numeric
//! leaves that exist on both sides under the same path. Small absolute
//! values (|v| < 10 on both sides) are skipped: percentages, tiny
//! µs-scale quantiles and count-like fields near zero jitter far more
//! than they inform.
//!
//! ```text
//! cargo run --release -p msp-bench --bin bench_trend
//! ```

use msp_bench::results_dir;
use msp_telemetry::Json;
use std::path::{Path, PathBuf};

fn numeric(j: &Json) -> Option<f64> {
    match j {
        Json::F64(v) => Some(*v),
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Walk `base` and `cur` in lockstep, invoking `report` on every
/// numeric leaf present in both under the same path.
fn walk(path: &str, base: &Json, cur: &Json, report: &mut impl FnMut(&str, f64, f64)) {
    match (base, cur) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, bv) in b {
                if let Some((_, cv)) = c.iter().find(|(k, _)| k == key) {
                    walk(&format!("{path}.{key}"), bv, cv, report);
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            for (i, (bv, cv)) in b.iter().zip(c.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), bv, cv, report);
            }
        }
        _ => {
            if let (Some(bv), Some(cv)) = (numeric(base), numeric(cur)) {
                report(path, bv, cv);
            }
        }
    }
}

fn load(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match Json::parse(&text) {
        Ok(j) => Some(j),
        Err(e) => {
            println!("trend: {} does not parse ({e}) — skipped", path.display());
            None
        }
    }
}

fn main() {
    let results = results_dir();
    let baselines: PathBuf = std::env::var("MSP_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results.join("baselines"));
    let threshold: f64 = std::env::var("MSP_TREND_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| *t > 0.0 && t.is_finite())
        .unwrap_or(0.25);

    let mut docs: Vec<PathBuf> = match std::fs::read_dir(&results) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    docs.sort();
    if docs.is_empty() {
        println!(
            "trend: no BENCH_*.json under {} — nothing to compare",
            results.display()
        );
        return;
    }

    let mut compared = 0usize;
    let mut leaves = 0usize;
    let mut warnings = 0usize;
    for doc in &docs {
        let name = doc.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        let base_path = baselines.join(name);
        let Some(base) = load(&base_path) else {
            if !base_path.exists() {
                println!(
                    "trend: {name}: no baseline at {} — skipped",
                    base_path.display()
                );
            }
            continue;
        };
        let Some(cur) = load(doc) else { continue };
        compared += 1;
        walk(name, &base, &cur, &mut |path, bv, cv| {
            leaves += 1;
            // noise floor: both sides tiny means the relative change is
            // dominated by jitter, not by the code under test
            if bv.abs() < 10.0 && cv.abs() < 10.0 {
                return;
            }
            let rel = (cv - bv).abs() / bv.abs().max(1e-12);
            if rel > threshold {
                warnings += 1;
                println!(
                    "trend WARNING: {path}: baseline {bv} -> current {cv} ({:+.0}%)",
                    (cv - bv) / bv.abs().max(1e-12) * 100.0
                );
            }
        });
    }
    println!(
        "trend: {compared} document(s) compared, {leaves} shared numeric leaf(ves), \
         {warnings} over the {:.0}% threshold{}",
        threshold * 100.0,
        if warnings > 0 {
            " (warnings only — timing on shared hardware is advisory)"
        } else {
            ""
        }
    );
}
