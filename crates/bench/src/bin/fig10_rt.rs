//! Fig 10 — strong scaling on the Rayleigh-Taylor density dataset:
//! overall time and compute+merge time, with a *partial* merge of two
//! radix-8 rounds — the paper's realistic large-scale configuration
//! (their largest runs: 4096..32768 processes on a 1152^3 grid).
//!
//! ```text
//! cargo run --release -p msp-bench --bin fig10_rt
//! ```

use msp_bench::{efficiency, emit_sim_series, fmt_bytes, Scale, Table};
use msp_core::{MergePlan, SimParams};

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(49u32, 145, 289); // paper: 1152 per side
    let ranks: Vec<u32> = match scale {
        Scale::Small => vec![64, 256],
        Scale::Default => vec![64, 256, 1024, 4096],
        Scale::Large => vec![512, 2048, 8192, 32768],
    };
    let field = msp_synth::rayleigh_taylor(n, 48, 2004);
    println!(
        "Fig 10 analogue: RT-like {n}^3 ({}), partial merge = two rounds of radix-8\n",
        fmt_bytes(field.dims().n_verts() * 4)
    );
    let t = Table::new(&[
        "ranks",
        "compute+merge(s)",
        "total(s)",
        "c+m eff(%)",
        "total eff(%)",
        "out blocks",
        "out size",
    ]);
    let mut base: Option<(u32, f64, f64)> = None;
    let mut sims = Vec::new();
    for &p in &ranks {
        let params = SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::rounds(vec![8, 8]),
            ..Default::default()
        };
        let r = msp_core::simulate(&field, p, &params).unwrap();
        let cm = r.compute_s + r.merge_s;
        let (ecm, etot) = match base {
            None => {
                base = Some((p, cm, r.total_s));
                (100.0, 100.0)
            }
            Some((p0, cm0, t0)) => (
                100.0 * efficiency(p0, cm0, p, cm),
                100.0 * efficiency(p0, t0, p, r.total_s),
            ),
        };
        t.row(&[
            format!("{p}"),
            format!("{:.4}", cm),
            format!("{:.4}", r.total_s),
            format!("{:.1}", ecm),
            format!("{:.1}", etot),
            format!("{}", r.output_blocks),
            fmt_bytes(r.output_bytes),
        ]);
        sims.push((format!("p{p}"), r));
    }
    emit_sim_series("fig10_rt", &sims);
    println!(
        "\nExpected shape (paper §VI-D2): with a partial merge the\n\
         compute+merge time keeps scaling much better than the end-to-end\n\
         time, which is capped by I/O (paper: 66% vs 35% at 32768 procs)."
    );
}
