//! Serve-layer latency: query-mix × cache-size sweep over [`ServerCore`]
//! with the schema-self-checked `results/BENCH_serve.json` output.
//!
//! One `--hierarchy` pipeline run builds the dataset in memory; each
//! sweep cell then replays a deterministic query stream against a fresh
//! server and reads p50/p99 per query class, QPS and the cache hit rate
//! out of the serve statistics. Two mixes bracket the cache behavior:
//!
//! * `repeat` — thresholds drawn from a pool of 4, so a warm cache
//!   answers almost everything (hit rate must be high);
//! * `scan` — a long stride of distinct thresholds, defeating a small
//!   cache (every materialization is paid).
//!
//! Knobs:
//!
//! * `MSP_SCALE=small|default|large` — volume size and query count;
//! * `MSP_PERSISTENCE=F` — ingest-run threshold (default 0, the full
//!   hierarchy), validated by the shared `parse_persistence` helper;
//! * `MSP_CHECK=1` — also assert every response is ok, the repeat mix
//!   hits the cache, and p50 ≤ p99 per class.
//!
//! ```text
//! cargo run --release -p msp-bench --bin serve_latency
//! ```

use msp_bench::{results_dir, Scale, Table};
use msp_core::{
    parse_persistence, run_parallel, Dataset, Input, MergePlan, PipelineParams, RunResult,
    ServeConfig, ServerCore,
};
use msp_telemetry::{bucket_width, Json};
use std::sync::Arc;
use std::time::Instant;

const BLOCKS: u32 = 8;

fn field_of(j: &Json, key: &str) -> Json {
    let Json::Obj(pairs) = j else {
        panic!("expected object around {key}")
    };
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing field {key}"))
}

fn as_u64(j: &Json, key: &str) -> u64 {
    match field_of(j, key) {
        Json::U64(n) => n,
        other => panic!("{key} is not a u64: {other:?}"),
    }
}

fn as_f64(j: &Json, key: &str) -> f64 {
    match field_of(j, key) {
        Json::F64(v) => v,
        Json::U64(n) => n as f64,
        other => panic!("{key} is not a number: {other:?}"),
    }
}

/// Deterministic splitmix64 stream so the workload replays identically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn dataset_of(r: &RunResult) -> Dataset {
    Dataset {
        name: "bench".to_string(),
        bases: r.outputs.clone(),
        hierarchies: r.hierarchies.clone(),
        segs: r.segmentation.clone(),
    }
}

fn main() {
    let check = std::env::var("MSP_CHECK").is_ok_and(|v| v == "1");
    let scale = Scale::from_env();
    let size = scale.pick(17, 33, 65);
    let queries = scale.pick(300usize, 2_000, 10_000);

    // pipeline threshold for the ingest run; lower leaves more records
    // in the hierarchy (validated by the same helper as `msc compute`)
    let persistence = match std::env::var("MSP_PERSISTENCE") {
        Ok(s) => parse_persistence(&s).expect("MSP_PERSISTENCE"),
        Err(_) => 0.0,
    };

    let input = Input::Memory(Arc::new(msp_synth::sinusoid(size, 3)));
    let params = PipelineParams {
        persistence_frac: persistence,
        plan: MergePlan::full_merge(BLOCKS),
        segment: true,
        hierarchy: true,
        ..Default::default()
    };
    let r = run_parallel(&input, 2, BLOCKS, &params, None).expect("pipeline run");
    // threshold pools come from the recorded keys, so every query lands
    // inside the hierarchy's actual persistence range
    let keys: Vec<f32> = r.hierarchies[0]
        .difference
        .iter()
        .map(|rec| rec.key)
        .collect();
    assert!(!keys.is_empty(), "hierarchy recorded no cancellations");
    let key_at = |frac: f64| keys[((keys.len() - 1) as f64 * frac) as usize];
    println!(
        "serve latency: sinusoid {size}^3, {BLOCKS} blocks, {} record(s), {queries} queries\n",
        keys.len()
    );

    let table = Table::new(&[
        "mix",
        "cache",
        "queries",
        "hit_rate",
        "qps",
        "thr_p50_us",
        "thr_p99_us",
        "d_p50_us",
        "d_p99_us",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for mix in ["repeat", "scan"] {
        for cache in [2usize, 32] {
            let core = ServerCore::new(
                vec![dataset_of(&r)],
                ServeConfig {
                    cache_capacity: cache,
                    threads: 1,
                    ..Default::default()
                },
            );
            let mut rng = Rng(0xC0FFEE ^ cache as u64);
            // client-side exact latencies of the threshold class, for
            // the histogram-vs-exact quantile comparison below
            let mut exact_thr: Vec<u64> = Vec::new();
            for i in 0..queries {
                let t = match mix {
                    // 4 hot thresholds: the cache should absorb these
                    "repeat" => key_at([0.2, 0.5, 0.8, 1.0][rng.next() as usize % 4]),
                    // a long stride of distinct thresholds: mostly misses
                    _ => key_at(i as f64 / queries as f64),
                };
                let (line, is_thr) = match rng.next() % 10 {
                    0..=6 => (format!("{{\"op\":\"threshold\",\"t\":{t}}}"), true),
                    7 => (format!("{{\"op\":\"extrema\",\"t\":{t},\"top\":5}}"), false),
                    8 => (format!("{{\"op\":\"segment-stats\",\"t\":{t}}}"), false),
                    _ => ("{\"op\":\"ping\"}".to_string(), false),
                };
                let t0 = Instant::now();
                let (resp, _) = core.handle_line(&line);
                if is_thr {
                    exact_thr.push(t0.elapsed().as_micros() as u64);
                }
                if check {
                    assert!(
                        !resp.contains("\"ok\":false"),
                        "{mix}/{cache}: error response to {line}: {resp}"
                    );
                }
            }
            // exact quantiles use the histogram's nearest-rank
            // convention so the delta isolates the bucketing error
            exact_thr.sort_unstable();
            let exact_at = |pct: usize| exact_thr[(exact_thr.len() - 1) * pct / 100];
            let (exact_p50, exact_p99) = (exact_at(50), exact_at(99));
            let stats = core.stats_json();
            let hit_rate = as_f64(&stats, "hit_rate");
            let qps = as_f64(&stats, "qps");
            let classes = field_of(&stats, "classes");
            let thr = field_of(&classes, "threshold");
            let (p50, p99) = (as_u64(&thr, "p50_us"), as_u64(&thr, "p99_us"));
            // The server histogram times the dispatch only, and its
            // quantile rounds down to a bucket floor — so it must sit
            // at or below the client-side exact quantile, and the gap
            // is the bucketing error plus the client's call overhead.
            let (d_p50, d_p99) = (exact_p50.saturating_sub(p50), exact_p99.saturating_sub(p99));
            if check {
                assert!(
                    p50 <= exact_p50 && p99 <= exact_p99,
                    "{mix}/{cache}: histogram quantiles above client-exact \
                     (p50 {p50} vs {exact_p50}, p99 {p99} vs {exact_p99})"
                );
                // one log-bucket width of rounding + a small allowance
                // for the timing the client sees but the server doesn't
                const OVERHEAD_US: u64 = 25;
                assert!(
                    d_p50 <= bucket_width(exact_p50).max(1) + OVERHEAD_US,
                    "{mix}/{cache}: p50 delta {d_p50} exceeds bucket width \
                     {} + {OVERHEAD_US}",
                    bucket_width(exact_p50)
                );
                assert!(
                    d_p99 <= bucket_width(exact_p99).max(1) + OVERHEAD_US,
                    "{mix}/{cache}: p99 delta {d_p99} exceeds bucket width \
                     {} + {OVERHEAD_US}",
                    bucket_width(exact_p99)
                );
            }
            if check {
                assert_eq!(as_u64(&stats, "errors"), 0, "{mix}/{cache}: errors");
                assert!(p50 <= p99, "{mix}/{cache}: p50 {p50} > p99 {p99}");
                let Json::Obj(cls) = &classes else {
                    panic!("classes is not an object")
                };
                for (name, c) in cls {
                    assert!(
                        as_u64(c, "p50_us") <= as_u64(c, "p99_us"),
                        "{mix}/{cache}: class {name} quantiles out of order"
                    );
                }
                if mix == "repeat" {
                    assert!(
                        hit_rate > 0.5,
                        "{mix}/{cache}: hit rate {hit_rate:.2} too low for a 4-key workload"
                    );
                }
            }
            table.row(&[
                mix.to_string(),
                format!("{cache}"),
                format!("{queries}"),
                format!("{hit_rate:.3}"),
                format!("{qps:.0}"),
                format!("{p50}"),
                format!("{p99}"),
                format!("{d_p50}"),
                format!("{d_p99}"),
            ]);
            rows.push(Json::obj(vec![
                ("mix", Json::str(mix)),
                ("cache", Json::U64(cache as u64)),
                ("queries", Json::U64(queries as u64)),
                ("hits", Json::U64(as_u64(&stats, "hits"))),
                ("misses", Json::U64(as_u64(&stats, "misses"))),
                ("hit_rate", Json::F64(hit_rate)),
                ("qps", Json::F64(qps)),
                ("thr_exact_p50_us", Json::U64(exact_p50)),
                ("thr_exact_p99_us", Json::U64(exact_p99)),
                ("thr_hist_delta_p50_us", Json::U64(d_p50)),
                ("thr_hist_delta_p99_us", Json::U64(d_p99)),
                ("classes", classes),
            ]));
        }
    }

    let doc = Json::obj(vec![
        ("kind", Json::str("serve_latency")),
        ("volume", Json::str(format!("sinusoid_{size}_3"))),
        ("blocks", Json::U64(BLOCKS as u64)),
        ("records", Json::U64(keys.len() as u64)),
        ("runs", Json::Arr(rows)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nbench written to {}", path.display());

    // schema self-check: the emitted document must round-trip
    let text = std::fs::read_to_string(&path).expect("read back BENCH_serve.json");
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} does not re-parse: {e}", path.display()));
    let Json::Arr(runs) = field_of(&parsed, "runs") else {
        panic!("runs is not an array");
    };
    assert_eq!(runs.len(), 4, "round-trip preserves the sweep");
    for run in &runs {
        let (h, m) = (as_u64(run, "hits"), as_u64(run, "misses"));
        let rate = as_f64(run, "hit_rate");
        assert!(
            (rate - h as f64 / (h + m).max(1) as f64).abs() < 1e-9,
            "hit_rate inconsistent with hits/misses after round-trip"
        );
    }
    println!("schema self-check OK ({} runs)", runs.len());
}
