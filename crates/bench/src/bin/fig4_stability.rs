//! Fig 4 — stability of the MS complex under blocking: the same
//! hydrogen-like field computed with 1, 8 and 64 blocks, before and after
//! 1% persistence simplification, with the paper's feature filter
//! (2-saddle→maximum arcs above a value threshold).
//!
//! ```text
//! cargo run --release -p msp-bench --bin fig4_stability
//! ```

use msp_bench::{emit_run_series, Scale, Table};
use msp_complex::query;
use msp_core::{run_parallel, Input, MergePlan, PipelineParams};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(33u32, 65, 129);
    let field = Arc::new(msp_synth::hydrogen(n));
    let input = Input::Memory(field);
    // the paper filters nodes with value > 14.5 on its byte scale
    let feature_value = 255.0 * 14.5 / 25.0;

    println!("Fig 4 analogue: hydrogen-like {n}^3, feature filter value > {feature_value:.0}\n");
    let t = Table::new(&[
        "blocks",
        "raw nodes",
        "raw arcs",
        "1% nodes",
        "1% arcs",
        "stable max",
        "filaments",
    ]);
    let mut runs = Vec::new();
    for blocks in [1u32, 8, 64] {
        let ranks = blocks.min(8);
        // finest scale, unmerged: shows the boundary-artifact bloat
        let raw = run_parallel(
            &input,
            ranks,
            blocks,
            &PipelineParams {
                persistence_frac: 0.0,
                plan: MergePlan::none(),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let raw_nodes: u64 = raw.outputs.iter().map(|c| c.n_live_nodes()).sum();
        let raw_arcs: u64 = raw.outputs.iter().map(|c| c.n_live_arcs()).sum();
        // 1% simplified, fully merged: artifacts resolve
        let merged = run_parallel(
            &input,
            ranks,
            blocks,
            &PipelineParams {
                persistence_frac: 0.01,
                plan: MergePlan::full_merge(blocks),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let ms = &merged.outputs[0];
        let stable = query::nodes_by_index_above(ms, 3, feature_value).len();
        let filaments = query::filament_subgraph(ms, feature_value).len();
        t.row(&[
            format!("{blocks}"),
            format!("{raw_nodes}"),
            format!("{raw_arcs}"),
            format!("{}", ms.n_live_nodes()),
            format!("{}", ms.n_live_arcs()),
            format!("{stable}"),
            format!("{filaments}"),
        ]);
        runs.push((format!("raw_b{blocks}"), raw));
        runs.push((format!("merged_b{blocks}"), merged));
    }
    let series: Vec<(String, &msp_core::RunResult)> =
        runs.iter().map(|(l, r)| (l.clone(), r)).collect();
    emit_run_series("fig4_stability", &series);
    println!(
        "\nExpected (paper §V-A): raw counts inflate with blocking (spurious\n\
         zero-persistence boundary nodes); after 1% simplification + full\n\
         merge, the node counts converge and the filtered features (stable\n\
         maxima, filament arcs) are identical across blockings."
    );
}
