//! Criterion bench: end-to-end per-block cost (gradient + trace +
//! simplify + compact) vs block size — the weak-scaling unit of the
//! paper's compute stage (its Fig 6 top row shows this is the quantity
//! that scales perfectly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msp_complex::{build_block_complex, simplify, SimplifyParams};
use msp_grid::{Decomposition, Dims};
use msp_morse::TraceLimits;

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_block");
    g.sample_size(10);
    for n in [13u32, 17, 25, 33] {
        let dims = Dims::cube(n);
        let field = msp_synth::jet(dims, 48, 5);
        let d = Decomposition::bisect(dims, 1);
        let bf = field.extract_block(d.block(0));
        g.throughput(Throughput::Elements(dims.n_verts()));
        g.bench_with_input(BenchmarkId::new("verts", n), &n, |b, _| {
            b.iter(|| {
                let (mut ms, _) = build_block_complex(&bf, &d, TraceLimits::default());
                simplify(&mut ms, SimplifyParams::up_to(0.02)).unwrap();
                ms.compact();
                ms
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
