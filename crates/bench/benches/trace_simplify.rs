//! Criterion bench: V-path tracing and persistence simplification cost
//! as the topological complexity of the field varies — the quantities
//! behind the paper's observation that merge time is a function of
//! complexity, not data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msp_complex::build::complex_from_gradient;
use msp_complex::{simplify, SimplifyParams};
use msp_grid::{Decomposition, Dims};
use msp_morse::{assign_gradient, trace_all_arcs, TraceLimits};

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.sample_size(10);
    for cmplx in [2u32, 4, 8] {
        let dims = Dims::cube(33);
        let field = msp_synth::sinusoid(33, cmplx);
        let d = Decomposition::bisect(dims, 1);
        let bf = field.extract_block(d.block(0));
        let grad = assign_gradient(&bf, &d);
        g.bench_with_input(BenchmarkId::new("complexity", cmplx), &cmplx, |b, _| {
            b.iter(|| trace_all_arcs(&grad, TraceLimits::default()))
        });
    }
    g.finish();
}

fn bench_simplify(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplify");
    g.sample_size(10);
    let dims = Dims::cube(25);
    let field = msp_synth::white_noise(dims, 3);
    let d = Decomposition::bisect(dims, 1);
    let bf = field.extract_block(d.block(0));
    let grad = assign_gradient(&bf, &d);
    let (base, _) = complex_from_gradient(&bf, &d, &grad, TraceLimits::default());
    for frac in [10u32, 50, 100] {
        g.bench_with_input(
            BenchmarkId::new("threshold_pct", frac),
            &frac,
            |b, &frac| {
                b.iter_batched(
                    || base.clone(),
                    |mut ms| {
                        simplify(&mut ms, SimplifyParams::up_to(frac as f32 / 100.0)).unwrap();
                        ms
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_trace, bench_simplify);
criterion_main!(benches);
