//! Criterion bench: discrete gradient assignment throughput, and the
//! ablation the DESIGN calls out — stratified lower-star (production)
//! vs the global-queue greedy baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msp_grid::{Decomposition, Dims};
use msp_morse::greedy::assign_gradient_greedy;
use msp_morse::lower_star::assign_gradient;

fn bench_gradient(c: &mut Criterion) {
    let mut g = c.benchmark_group("gradient");
    g.sample_size(10);
    for n in [17u32, 25, 33] {
        let dims = Dims::cube(n);
        let field = msp_synth::white_noise(dims, 7);
        let d = Decomposition::bisect(dims, 1);
        let bf = field.extract_block(d.block(0));
        g.bench_with_input(BenchmarkId::new("lower_star", n), &n, |b, _| {
            b.iter(|| assign_gradient(&bf, &d))
        });
        g.bench_with_input(BenchmarkId::new("greedy_baseline", n), &n, |b, _| {
            b.iter(|| assign_gradient_greedy(&bf, &d))
        });
    }
    // boundary restriction overhead: same block size, blocked vs not
    let dims = Dims::cube(33);
    let field = msp_synth::white_noise(dims, 9);
    let d8 = Decomposition::bisect(dims, 8);
    let bf8 = field.extract_block(d8.block(0));
    g.bench_function("lower_star_with_boundary_strata", |b| {
        b.iter(|| assign_gradient(&bf8, &d8))
    });
    g.finish();
}

criterion_group!(benches, bench_gradient);
criterion_main!(benches);
