//! Criterion bench: the merge computation — serialization, gluing and
//! re-simplification of neighbouring block complexes (the per-round root
//! work of §IV-F3) as complexity varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msp_complex::glue::glue_all;
use msp_complex::{build_block_complex, simplify, wire, MsComplex, SimplifyParams};
use msp_grid::{Decomposition, Dims};
use msp_morse::TraceLimits;

fn block_complexes(cmplx: u32) -> (Decomposition, Vec<MsComplex>) {
    let dims = Dims::cube(33);
    let field = msp_synth::sinusoid(33, cmplx);
    let d = Decomposition::bisect(dims, 8);
    let cs = d
        .blocks()
        .iter()
        .map(|b| {
            let (mut ms, _) =
                build_block_complex(&field.extract_block(b), &d, TraceLimits::default());
            simplify(&mut ms, SimplifyParams::up_to(0.02)).unwrap();
            ms.compact();
            ms
        })
        .collect();
    (d, cs)
}

fn bench_glue(c: &mut Criterion) {
    let mut g = c.benchmark_group("glue");
    g.sample_size(10);
    for cmplx in [2u32, 4, 8] {
        let (d, cs) = block_complexes(cmplx);
        g.bench_with_input(
            BenchmarkId::new("radix8_root_merge", cmplx),
            &cmplx,
            |b, _| {
                b.iter_batched(
                    || cs.clone(),
                    |mut cs| {
                        let mut root = cs.remove(0);
                        let rest: Vec<_> = cs.drain(..).collect();
                        glue_all(&mut root, &rest, &d).unwrap();
                        simplify(&mut root, SimplifyParams::up_to(0.02)).unwrap();
                        root.compact();
                        root
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.sample_size(20);
    let (_, cs) = block_complexes(8);
    let payload = wire::serialize(&cs[0]);
    g.bench_function("serialize", |b| b.iter(|| wire::serialize(&cs[0])));
    g.bench_function("deserialize", |b| {
        b.iter(|| wire::deserialize(&payload).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_glue, bench_wire);
criterion_main!(benches);
