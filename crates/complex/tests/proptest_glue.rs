//! Property-based tests of the glue/simplify layer against the
//! independent oracle (`msp-oracle`): glue is idempotent and
//! order-independent, and simplification preserves the full invariant
//! set (see DESIGN.md §10).

use msp_complex::build::build_block_complex;
use msp_complex::glue::glue_all;
use msp_complex::{simplify, MsComplex, SimplifyParams};
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::TraceLimits;
use msp_oracle::{check_complex, check_glue_idempotent, fingerprint, CheckOptions};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = ScalarField> {
    ((4u32..8, 4u32..8, 4u32..8), 0u64..1_000_000)
        .prop_map(|((x, y, z), seed)| msp_synth::white_noise(Dims::new(x, y, z), seed))
}

/// Per-block complexes over an n-block bisection, each compacted.
fn block_complexes(field: &ScalarField, n_blocks: u32) -> (Decomposition, Vec<MsComplex>) {
    let d = Decomposition::bisect(field.dims(), n_blocks);
    let cs = d
        .blocks()
        .iter()
        .map(|b| {
            let (mut ms, _) =
                build_block_complex(&field.extract_block(b), &d, TraceLimits::default());
            ms.compact();
            ms
        })
        .collect();
    (d, cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn glue_is_idempotent(field in arb_field()) {
        let (d, mut cs) = block_complexes(&field, 2);
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d).unwrap();
        // re-gluing the merged complex into itself must add nothing
        check_glue_idempotent(&root, &d).unwrap();
    }

    #[test]
    fn glue_is_order_independent(field in arb_field()) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= 16);
        let (d, cs) = block_complexes(&field, 4);
        prop_assert_eq!(cs.len(), 4);
        // glue the remaining three blocks into block 0 in every
        // permutation; the living content must be identical
        let orders: [[usize; 3]; 6] = [
            [1, 2, 3], [1, 3, 2], [2, 1, 3], [2, 3, 1], [3, 1, 2], [3, 2, 1],
        ];
        let mut reference = None;
        for order in orders {
            let mut root = cs[0].clone();
            let incoming: Vec<MsComplex> = order.iter().map(|&i| cs[i].clone()).collect();
            glue_all(&mut root, &incoming, &d).unwrap();
            let fp = fingerprint(&root);
            match &reference {
                None => reference = Some(fp),
                Some(r) => prop_assert_eq!(r, &fp, "glue order {:?} diverged", order),
            }
        }
    }

    #[test]
    fn simplify_preserves_invariants(field in arb_field(), pct in 0u32..100) {
        let (d, mut cs) = block_complexes(&field, 2);
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d).unwrap();
        let (lo, hi) = field.min_max();
        let threshold = (hi - lo) * pct as f32 / 100.0;
        simplify(&mut root, SimplifyParams::up_to(threshold)).unwrap();
        // the merged, simplified complex must pass every oracle check,
        // structural and semantic, against the original field
        let report = check_complex(&root, &d, Some(&field), &CheckOptions::default());
        prop_assert!(report.is_clean(), "oracle violations: {:?}", report.notes);
        prop_assert!(report.semantic, "semantic checks did not run");
    }

    #[test]
    fn simplified_blocks_glue_idempotently(field in arb_field(), pct in 0u32..60) {
        // the pipeline glues *simplified* block complexes; idempotency
        // and cleanliness must survive the round trip
        let d = Decomposition::bisect(field.dims(), 2);
        let (lo, hi) = field.min_max();
        let threshold = (hi - lo) * pct as f32 / 100.0;
        let mut cs: Vec<MsComplex> = d
            .blocks()
            .iter()
            .map(|b| {
                let (mut ms, _) =
                    build_block_complex(&field.extract_block(b), &d, TraceLimits::default());
                simplify(&mut ms, SimplifyParams::up_to(threshold)).unwrap();
                ms.compact();
                ms
            })
            .collect();
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d).unwrap();
        check_glue_idempotent(&root, &d).unwrap();
        let report = check_complex(&root, &d, Some(&field), &CheckOptions::default());
        prop_assert!(report.is_clean(), "oracle violations: {:?}", report.notes);
    }
}
