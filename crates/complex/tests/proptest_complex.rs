//! Property-based tests of the MS-complex layer: build, simplify, glue
//! and wire invariants over random fields and decompositions.

use msp_complex::build::build_block_complex;
use msp_complex::glue::glue_all;
use msp_complex::{simplify, wire, MsComplex, SimplifyParams};
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::TraceLimits;
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = ScalarField> {
    ((4u32..8, 4u32..8, 4u32..8), 0u64..1_000_000)
        .prop_map(|((x, y, z), seed)| msp_synth::white_noise(Dims::new(x, y, z), seed))
}

fn chi(ms: &MsComplex) -> i64 {
    let c = ms.node_census();
    c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn build_then_simplify_invariants(field in arb_field(), pct in 0u32..100) {
        let d = Decomposition::bisect(field.dims(), 1);
        let (mut ms, _) =
            build_block_complex(&field.extract_block(d.block(0)), &d, TraceLimits::default());
        let chi0 = chi(&ms);
        prop_assert_eq!(chi0, 1);
        let (lo, hi) = field.min_max();
        let threshold = (hi - lo) * pct as f32 / 100.0;
        simplify(&mut ms, SimplifyParams::up_to(threshold)).unwrap();
        // chi invariant under cancellation
        prop_assert_eq!(chi(&ms), chi0);
        ms.check_integrity().unwrap();
        // every cancelled pair within threshold
        for c in &ms.hierarchy {
            prop_assert!(c.persistence <= threshold + 1e-6);
        }
        // all cancelled nodes record their persistence
        for n in ms.nodes.iter().filter(|n| !n.alive) {
            prop_assert!(n.cancel_persistence <= threshold + 1e-6);
        }
    }

    #[test]
    fn compact_preserves_live_structure(field in arb_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let (mut ms, _) =
            build_block_complex(&field.extract_block(d.block(0)), &d, TraceLimits::default());
        simplify(&mut ms, SimplifyParams::up_to(0.3)).unwrap();
        let nodes = ms.n_live_nodes();
        let arcs = ms.n_live_arcs();
        let census = ms.node_census();
        ms.compact();
        prop_assert_eq!(ms.n_live_nodes(), nodes);
        prop_assert_eq!(ms.n_live_arcs(), arcs);
        prop_assert_eq!(ms.node_census(), census);
        ms.check_integrity().unwrap();
    }

    #[test]
    fn wire_round_trip_arbitrary(field in arb_field(), pct in 0u32..60) {
        let d = Decomposition::bisect(field.dims(), 1);
        let (mut ms, _) =
            build_block_complex(&field.extract_block(d.block(0)), &d, TraceLimits::default());
        simplify(&mut ms, SimplifyParams::up_to(pct as f32 / 100.0)).unwrap();
        ms.compact();
        let bytes = wire::serialize(&ms);
        let back = wire::deserialize(&bytes).unwrap();
        prop_assert_eq!(wire::serialize(&back), bytes);
        prop_assert_eq!(back.node_census(), ms.node_census());
    }

    #[test]
    fn glue_conserves_nodes_and_chi(field in arb_field()) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= 8);
        let d = Decomposition::bisect(dims, 2);
        let mut cs: Vec<MsComplex> = d
            .blocks()
            .iter()
            .map(|b| {
                let (mut ms, _) = build_block_complex(
                    &field.extract_block(b),
                    &d,
                    TraceLimits::default(),
                );
                ms.compact();
                ms
            })
            .collect();
        let unique: std::collections::HashSet<u64> = cs
            .iter()
            .flat_map(|c| c.nodes.iter().map(|n| n.addr))
            .collect();
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d).unwrap();
        prop_assert_eq!(root.n_live_nodes() as usize, unique.len());
        root.check_integrity().unwrap();
        // fully merged complex over the whole domain: chi = 1 again
        prop_assert_eq!(chi(&root), 1);
        // no boundary nodes remain after a full merge
        prop_assert!(root.nodes.iter().all(|n| !n.alive || !n.boundary));
    }

    #[test]
    fn full_merge_preserves_separated_features(
        n in 9u32..13,
        c1 in (0.20f32..0.32, 0.20f32..0.32, 0.20f32..0.32),
        c2 in (0.68f32..0.80, 0.68f32..0.80, 0.68f32..0.80),
        seed in 0u64..100_000,
        pct in 10u32..30,
    ) {
        // The paper's §V-A claim, as a property: features whose
        // persistence is far above the threshold (two strong separated
        // bumps over weak noise) survive identically in the serial and
        // the blocked+merged computation.
        let dims = Dims::cube(n);
        let s = (n - 1) as f32;
        let sigma = 0.12 * s;
        let field = {
            let noise = msp_synth::white_noise(dims, seed);
            ScalarField::from_fn(dims, |x, y, z| {
                let p = [x as f32, y as f32, z as f32];
                let bump = |c: (f32, f32, f32)| {
                    let d2 = (p[0] - c.0 * s).powi(2)
                        + (p[1] - c.1 * s).powi(2)
                        + (p[2] - c.2 * s).powi(2);
                    (-d2 / (2.0 * sigma * sigma)).exp()
                };
                bump(c1) + bump(c2) + 0.05 * noise.value(x, y, z)
            })
        };
        let (lo, hi) = field.min_max();
        let threshold = (hi - lo) * pct as f32 / 100.0;

        let d1 = Decomposition::bisect(dims, 1);
        let (mut serial, _) = build_block_complex(
            &field.extract_block(d1.block(0)),
            &d1,
            TraceLimits::default(),
        );
        simplify(&mut serial, SimplifyParams::up_to(threshold)).unwrap();

        let d2 = Decomposition::bisect(dims, 2);
        let mut cs: Vec<MsComplex> = d2
            .blocks()
            .iter()
            .map(|b| {
                let (mut ms, _) = build_block_complex(
                    &field.extract_block(b),
                    &d2,
                    TraceLimits::default(),
                );
                simplify(&mut ms, SimplifyParams::up_to(threshold)).unwrap();
                ms.compact();
                ms
            })
            .collect();
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d2).unwrap();
        simplify(&mut root, SimplifyParams::up_to(threshold)).unwrap();
        prop_assert_eq!(chi(&root), chi(&serial));
        // Exact equality of the census is NOT guaranteed for features
        // whose persistence approaches the threshold (cancellation order
        // differs; at these tiny grids sampling-induced saddles sit near
        // any threshold). Guard against gross divergence, and require
        // that both runs keep the two dominant bumps.
        let (r3, s3) = (root.node_census()[3] as i64, serial.node_census()[3] as i64);
        prop_assert!((r3 - s3).abs() <= 3, "maxima: parallel {} serial {}", r3, s3);
        prop_assert!(r3 >= 2 && s3 >= 2, "dominant bumps must survive ({r3}, {s3})");
    }
}
