//! # msp-complex
//!
//! The Morse-Smale complex 1-skeleton: storage, construction from a
//! discrete gradient, persistence-based simplification, gluing of
//! block complexes, and a compact wire/file serialization.
//!
//! Follows the data-structure design of the paper (§IV-D, [11]):
//! nodes, arcs and geometry records are constant-sized elements stored in
//! flat arrays, optimized for efficient simplification; the geometry of
//! arcs created by cancellations *references* the geometry objects that
//! were merged instead of copying them (§IV-E).
//!
//! Module map:
//! * [`skeleton`] — [`MsComplex`] storage: nodes, arcs, geometry DAG,
//!   adjacency, address index;
//! * [`build`] — building a block-local complex from a scalar block
//!   (gradient assignment + V-path tracing);
//! * [`simplify`] — lowest-persistence-first cancellation with the
//!   boundary-node restriction and a cancellation hierarchy;
//! * [`glue`] — merging complexes at shared-boundary nodes (§IV-F3);
//! * [`wire`] — serialization used for inter-process messages and the
//!   block-structured output file;
//! * [`query`] — census, filters and graph statistics over the living
//!   complex.

pub mod build;
pub mod export;
pub mod glue;
pub mod query;
pub mod simplify;
pub mod skeleton;
pub mod wire;

pub use build::{build_block_complex, complex_from_gradient, complex_from_gradient_mt, BuildStats};
pub use glue::{GlueError, GlueStats};
pub use simplify::{
    replay_cancellation, simplify, simplify_forwarding, simplify_with, CancelOrder, CancelRecord,
    ReplayError, SimplifyError, SimplifyParams, SimplifyStats, FORWARD_DRAIN,
};
pub use skeleton::{ArcId, GeomId, MsComplex, NodeId};
