//! Persistence-based simplification (paper §III-C, §IV-E).
//!
//! Repeatedly cancel the lowest-persistence pair of critical points
//! connected by an arc. A cancellation removes the two nodes and every
//! arc touching them, then reconnects their neighbourhoods: for every
//! other arc `x→l` into the lower node and every other arc `u→y` out of
//! the upper node, a new arc `x→y` is created whose geometry splices the
//! three old paths. The paper's parallel restriction applies: **arcs with
//! a boundary endpoint are never cancelled** (§IV-E), keeping shared
//! faces intact for gluing.
//!
//! A cancellation is legal only when the two nodes are connected by
//! exactly one arc — a doubled arc would turn into a closed V-path upon
//! reversal.

use crate::skeleton::{ArcId, Cancellation, MsComplex, NodeId};
use msp_grid::field::OrderedF32;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Simplification configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimplifyParams {
    /// Cancel pairs with persistence **at most** this (absolute value).
    pub threshold: f32,
    /// Skip a cancellation if it would create more than this many arcs
    /// (valence explosion guard); `None` = unlimited.
    pub max_new_arcs: Option<u64>,
    /// Cap on *stored* parallel arcs between one node pair. Any value of
    /// at least 2 is provably neutral to the cancellation sequence:
    /// legality only distinguishes multiplicity 1 from 2-or-more, true
    /// multiplicity never decreases while both endpoints live, and pair
    /// existence is preserved — so capping only bounds memory and output
    /// size on degenerate (perfectly symmetric) fields, where
    /// composite-arc counts would otherwise grow combinatorially. `None`
    /// stores every composite arc, as the paper's data structure [14]
    /// does.
    pub max_parallel_arcs: Option<u32>,
}

impl SimplifyParams {
    pub fn up_to(threshold: f32) -> Self {
        SimplifyParams {
            threshold,
            max_new_arcs: None,
            max_parallel_arcs: Some(2),
        }
    }
}

/// Counters from one simplification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    pub cancellations: u64,
    pub arcs_removed: u64,
    pub arcs_created: u64,
    pub skipped_multiplicity: u64,
    pub skipped_valence: u64,
    /// Composite arcs not stored because the pair hit `max_parallel_arcs`.
    pub capped_parallel: u64,
}

/// A configuration or data defect that makes persistence ordering
/// meaningless. Detected up front, before any cancellation, so a
/// returned error leaves the complex untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimplifyError {
    /// `threshold` is NaN: every `persistence > threshold` comparison is
    /// false, so the loop would cancel *everything* regardless of
    /// persistence. (`+inf` remains a legal "simplify fully" request.)
    NanThreshold,
    /// A live node carries a non-finite function value; persistences
    /// involving it are NaN/inf and would corrupt the heap order.
    NonFiniteValue { addr: u64, value: f32 },
}

impl fmt::Display for SimplifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplifyError::NanThreshold => write!(f, "simplification threshold is NaN"),
            SimplifyError::NonFiniteValue { addr, value } => {
                write!(f, "node at address {addr} has non-finite value {value}")
            }
        }
    }
}

impl std::error::Error for SimplifyError {}

/// Forward target of a cancelled extremum whose saddle had no surviving
/// sibling extremum (matches `msp_segment::DRAIN_ADDR`).
pub const FORWARD_DRAIN: u64 = u64::MAX;

/// Run persistence simplification up to `params.threshold`.
pub fn simplify(
    ms: &mut MsComplex,
    params: SimplifyParams,
) -> Result<SimplifyStats, SimplifyError> {
    simplify_forwarding(ms, params, None)
}

/// Like [`simplify`], additionally recording a *forward entry*
/// `(dead_addr, target_addr)` for every extremum the pass cancels:
/// a `(1-saddle, min)` cancellation forwards the dead minimum to the
/// lowest other minimum adjacent to the saddle (ties broken by address),
/// a `(max, 2-saddle)` cancellation forwards the dead maximum to the
/// highest other maximum adjacent to the saddle. A saddle with no other
/// extremum neighbour forwards to [`FORWARD_DRAIN`]. Targets may
/// themselves be cancelled later — consumers resolve chains by path
/// compression. Saddle-saddle cancellations record nothing.
pub fn simplify_forwarding(
    ms: &mut MsComplex,
    params: SimplifyParams,
    mut forwards: Option<&mut Vec<(u64, u64)>>,
) -> Result<SimplifyStats, SimplifyError> {
    if params.threshold.is_nan() {
        return Err(SimplifyError::NanThreshold);
    }
    if let Some(bad) = ms.nodes.iter().find(|n| n.alive && !n.value.is_finite()) {
        return Err(SimplifyError::NonFiniteValue {
            addr: bad.addr,
            value: bad.value,
        });
    }
    let mut stats = SimplifyStats::default();
    let mut since_prune = 0u32;
    let mut heap: BinaryHeap<Reverse<(OrderedF32, ArcId)>> = BinaryHeap::new();
    for (i, _) in ms.arcs.iter().enumerate().filter(|(_, a)| a.alive) {
        push_candidate(ms, i as ArcId, &mut heap);
    }
    while let Some(Reverse((p, a))) = heap.pop() {
        if !ms.arcs[a as usize].alive {
            continue;
        }
        let arc = ms.arcs[a as usize];
        let (u, l) = (arc.upper, arc.lower);
        let current = persistence(ms, u, l);
        if current > params.threshold {
            break; // heap is persistence-ordered; nothing lower remains
        }
        debug_assert_eq!(p.value(), current);
        if ms.nodes[u as usize].boundary || ms.nodes[l as usize].boundary {
            continue; // boundary nodes are anchors for gluing
        }
        if ms.multiplicity(u, l) != 1 {
            stats.skipped_multiplicity += 1;
            continue;
        }
        // neighbourhood arcs
        let above: Vec<ArcId> = ms.arcs_above(l).filter(|&x| x != a).collect();
        let below: Vec<ArcId> = ms.arcs_below(u).filter(|&x| x != a).collect();
        // arcs from u into l other than `a` cannot exist here (mult == 1),
        // but u may have other *upward* arcs and l other *downward* arcs —
        // those are simply deleted with their node.
        let new_count = above.len() as u64 * below.len() as u64;
        if let Some(cap) = params.max_new_arcs {
            if new_count > cap {
                stats.skipped_valence += 1;
                continue;
            }
        }
        if let Some(fw) = forwards.as_deref_mut() {
            record_forward(ms, u, l, &above, &below, fw);
        }
        // create replacement arcs x -> y
        let mut n_created = 0u32;
        for &a1 in &above {
            for &a2 in &below {
                let x = ms.arcs[a1 as usize].upper;
                let y = ms.arcs[a2 as usize].lower;
                debug_assert_ne!(x, u);
                debug_assert_ne!(y, l);
                if let Some(cap) = params.max_parallel_arcs {
                    if ms.multiplicity(x, y) >= cap as usize {
                        stats.capped_parallel += 1;
                        continue;
                    }
                }
                let g = ms.add_cancel_geom(
                    ms.arcs[a1 as usize].geom,
                    ms.arcs[a as usize].geom,
                    ms.arcs[a2 as usize].geom,
                );
                let id = ms.add_arc(x, y, g);
                push_candidate(ms, id, &mut heap);
                stats.arcs_created += 1;
                n_created += 1;
            }
        }
        // delete all arcs incident to u or l, then the nodes
        let doomed: Vec<ArcId> = ms.arcs_of(u).chain(ms.arcs_of(l)).collect();
        let mut n_deleted = 0u32;
        for d in doomed {
            if ms.arcs[d as usize].alive {
                ms.kill_arc(d);
                n_deleted += 1;
            }
        }
        ms.kill_node(u, current);
        ms.kill_node(l, current);
        stats.arcs_removed += n_deleted as u64;
        stats.cancellations += 1;
        since_prune += 1;
        if since_prune == 512 {
            ms.prune_dead_adjacency();
            since_prune = 0;
        }
        ms.hierarchy.push(Cancellation {
            persistence: current,
            upper: u,
            lower: l,
            n_deleted_arcs: n_deleted,
            n_created_arcs: n_created,
        });
    }
    Ok(stats)
}

/// Record the segmentation forward entry for one cancellation, if it
/// kills an extremum. `above`/`below` are the saddle's surviving
/// neighbour arcs (the cancelled arc already excluded).
fn record_forward(
    ms: &MsComplex,
    u: NodeId,
    l: NodeId,
    above: &[ArcId],
    below: &[ArcId],
    fw: &mut Vec<(u64, u64)>,
) {
    let key = |n: NodeId| {
        (
            OrderedF32::new(ms.nodes[n as usize].value),
            ms.nodes[n as usize].addr,
        )
    };
    if ms.nodes[l as usize].index == 0 {
        // (1-saddle u, min l): the dead minimum's basin drains to the
        // lowest other minimum adjacent to u.
        let target = below
            .iter()
            .map(|&a2| key(ms.arcs[a2 as usize].lower))
            .min()
            .map(|(_, addr)| addr)
            .unwrap_or(FORWARD_DRAIN);
        fw.push((ms.nodes[l as usize].addr, target));
    } else if ms.nodes[u as usize].index == 3 {
        // (max u, 2-saddle l): the dead maximum's mountain is absorbed
        // by the highest other maximum adjacent to l.
        let target = above
            .iter()
            .map(|&a1| key(ms.arcs[a1 as usize].upper))
            .max()
            .map(|(_, addr)| addr)
            .unwrap_or(FORWARD_DRAIN);
        fw.push((ms.nodes[u as usize].addr, target));
    }
}

fn persistence(ms: &MsComplex, u: NodeId, l: NodeId) -> f32 {
    (ms.nodes[u as usize].value - ms.nodes[l as usize].value).abs()
}

fn push_candidate(ms: &MsComplex, a: ArcId, heap: &mut BinaryHeap<Reverse<(OrderedF32, ArcId)>>) {
    let arc = &ms.arcs[a as usize];
    let p = persistence(ms, arc.upper, arc.lower);
    heap.push(Reverse((OrderedF32::new(p), a)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use msp_grid::decomp::Decomposition;
    use msp_grid::{Dims, ScalarField};
    use msp_morse::TraceLimits;

    fn serial(f: &ScalarField) -> MsComplex {
        let d = Decomposition::bisect(f.dims(), 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default()).0
    }

    /// Morse-index alternating sum is invariant under cancellation.
    fn chi(ms: &MsComplex) -> i64 {
        let c = ms.node_census();
        c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
    }

    #[test]
    fn full_simplification_of_noise_leaves_chi() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 2);
        let mut ms = serial(&f);
        let chi_before = chi(&ms);
        let stats = simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert!(stats.cancellations > 0);
        assert_eq!(chi(&ms), chi_before);
        ms.check_integrity().unwrap();
        // full simplification leaves only pairs blocked by the
        // multiplicity rule: every remaining live arc must connect nodes
        // joined by two or more arcs (a doubled arc cannot be cancelled)
        for a in ms.arcs.iter().filter(|a| a.alive) {
            assert!(
                ms.multiplicity(a.upper, a.lower) >= 2,
                "a singly-connected pair should have been cancelled"
            );
        }
        // and the complex must have shrunk dramatically
        assert!(ms.n_live_nodes() <= 16, "got {:?}", ms.node_census());
    }

    #[test]
    fn threshold_zero_cancels_only_zero_persistence() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 2);
        let mut ms = serial(&f);
        let live_before = ms.n_live_nodes();
        simplify(&mut ms, SimplifyParams::up_to(0.0)).unwrap();
        // distinct noise values: nothing at persistence exactly 0 unless
        // SoS plateaus — allow few, forbid mass cancellation
        assert!(ms.n_live_nodes() >= live_before / 2);
    }

    #[test]
    fn two_bumps_survive_small_threshold() {
        let dims = Dims::new(17, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let b = |cx: f32| {
                (-((x as f32 - cx).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2))
                    / 6.0)
                    .exp()
            };
            b(4.0) + b(12.0) + 0.001 * msp_synth::basic::hash_unit(9, dims.vertex_index(x, y, z))
        });
        let mut ms = serial(&f);
        simplify(&mut ms, SimplifyParams::up_to(0.05)).unwrap();
        let census = ms.node_census();
        assert_eq!(census[3], 2, "both maxima must survive 5%: {:?}", census);
        // simplifying all the way merges them
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert_eq!(
            ms.node_census()[3],
            0,
            "maxima die on a box when fully simplified"
        );
    }

    #[test]
    fn cancelled_pairs_ordered_by_persistence() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 44);
        let mut ms = serial(&f);
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        // each cancellation's persistence is within threshold and the
        // hierarchy is (weakly) monotone up to re-ordering slack created
        // by newly-created arcs; verify every recorded persistence is
        // >= the minimum of later... the strong property: recorded
        // persistences are exactly |f(u) - f(l)| — checked in the loop —
        // and the FIRST cancellation is the global minimum candidate.
        assert!(!ms.hierarchy.is_empty());
        for c in &ms.hierarchy {
            assert!(c.persistence >= 0.0);
        }
    }

    #[test]
    fn boundary_nodes_never_cancelled() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 12);
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let (mut ms, _) = build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
            let boundary_before: Vec<u64> = ms
                .nodes
                .iter()
                .filter(|n| n.boundary)
                .map(|n| n.addr)
                .collect();
            simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
            for addr in boundary_before {
                let id = ms.node_at(addr).expect("boundary node survived");
                assert!(ms.nodes[id as usize].alive);
            }
        }
    }

    #[test]
    fn valence_guard_skips() {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 21);
        let mut ms = serial(&f);
        let stats = simplify(
            &mut ms,
            SimplifyParams {
                threshold: f32::INFINITY,
                max_new_arcs: Some(0),
                max_parallel_arcs: Some(2),
            },
        )
        .unwrap();
        // with a zero cap, only cancellations creating no arcs happen
        assert_eq!(stats.arcs_created, 0);
    }

    #[test]
    fn nan_threshold_and_nan_values_are_typed_errors() {
        let f = msp_synth::white_noise(Dims::new(6, 6, 6), 3);
        let mut ms = serial(&f);
        assert_eq!(
            simplify(&mut ms, SimplifyParams::up_to(f32::NAN)),
            Err(SimplifyError::NanThreshold)
        );
        let victim = ms.nodes.iter().position(|n| n.alive).unwrap();
        let addr = ms.nodes[victim].addr;
        ms.nodes[victim].value = f32::NAN;
        let err = simplify(&mut ms, SimplifyParams::up_to(0.1)).unwrap_err();
        match err {
            SimplifyError::NonFiniteValue { addr: a, value } => {
                assert_eq!(a, addr);
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn forward_entries_cover_every_cancelled_extremum() {
        use std::collections::HashMap;
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 31);
        let mut ms = serial(&f);
        let mut fw: Vec<(u64, u64)> = Vec::new();
        simplify_forwarding(&mut ms, SimplifyParams::up_to(f32::INFINITY), Some(&mut fw)).unwrap();
        assert!(!fw.is_empty());
        // one entry per cancelled extremum, no extremum forwarded twice
        let dead_extrema = ms
            .hierarchy
            .iter()
            .filter(|c| {
                ms.nodes[c.lower as usize].index == 0 || ms.nodes[c.upper as usize].index == 3
            })
            .count();
        assert_eq!(fw.len(), dead_extrema);
        let map: HashMap<u64, u64> = fw.iter().copied().collect();
        assert_eq!(map.len(), fw.len(), "an extremum was forwarded twice");
        // every chain terminates at a live extremum (or the drain)
        for &(dead, _) in &fw {
            let mut cur = dead;
            let mut hops = 0;
            while let Some(&next) = map.get(&cur) {
                cur = next;
                hops += 1;
                assert!(hops <= fw.len(), "forward cycle at {dead:#x}");
                if cur == FORWARD_DRAIN {
                    break;
                }
            }
            if cur != FORWARD_DRAIN {
                let id = ms.node_at(cur).expect("chain ends at a known node");
                let n = &ms.nodes[id as usize];
                assert!(n.alive, "chain from {dead:#x} ends at dead node");
                assert!(n.index == 0 || n.index == 3);
            }
        }
    }

    #[test]
    fn plain_simplify_unaffected_by_forwarding_path() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 5);
        let mut a = serial(&f);
        let mut b = serial(&f);
        let mut fw = Vec::new();
        let sa = simplify(&mut a, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        let sb = simplify_forwarding(&mut b, SimplifyParams::up_to(f32::INFINITY), Some(&mut fw))
            .unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.hierarchy.len(), b.hierarchy.len());
    }

    #[test]
    fn hierarchy_records_match_stats() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 77);
        let mut ms = serial(&f);
        let stats = simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert_eq!(stats.cancellations as usize, ms.hierarchy.len());
        let created: u64 = ms.hierarchy.iter().map(|c| c.n_created_arcs as u64).sum();
        assert_eq!(created, stats.arcs_created);
    }
}
