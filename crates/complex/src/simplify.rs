//! Persistence-based simplification (paper §III-C, §IV-E).
//!
//! Repeatedly cancel the lowest-persistence pair of critical points
//! connected by an arc. A cancellation removes the two nodes and every
//! arc touching them, then reconnects their neighbourhoods: for every
//! other arc `x→l` into the lower node and every other arc `u→y` out of
//! the upper node, a new arc `x→y` is created whose geometry splices the
//! three old paths. The paper's parallel restriction applies: **arcs with
//! a boundary endpoint are never cancelled** (§IV-E), keeping shared
//! faces intact for gluing.
//!
//! A cancellation is legal only when the two nodes are connected by
//! exactly one arc — a doubled arc would turn into a closed V-path upon
//! reversal.
//!
//! The cancellation *ordering* is pluggable ([`CancelOrder`]): the
//! classic persistence `|f(u) − f(l)|` difference, or manifold size
//! (`count`, in the style of topopy's orderings). [`simplify_with`] can
//! log every cancellation as a [`CancelRecord`]; a logged sequence can
//! then be re-executed positionally by [`replay_cancellation`] — both
//! paths share [`execute_cancellation`] verbatim, which is what makes
//! hierarchy replay bit-identical to a direct simplification run.

use crate::skeleton::{ArcId, Cancellation, MsComplex, NodeId};
use msp_grid::field::OrderedF32;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Simplification configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimplifyParams {
    /// Cancel pairs with persistence **at most** this (absolute value).
    pub threshold: f32,
    /// Skip a cancellation if it would create more than this many arcs
    /// (valence explosion guard); `None` = unlimited.
    pub max_new_arcs: Option<u64>,
    /// Cap on *stored* parallel arcs between one node pair. Any value of
    /// at least 2 is provably neutral to the cancellation sequence:
    /// legality only distinguishes multiplicity 1 from 2-or-more, true
    /// multiplicity never decreases while both endpoints live, and pair
    /// existence is preserved — so capping only bounds memory and output
    /// size on degenerate (perfectly symmetric) fields, where
    /// composite-arc counts would otherwise grow combinatorially. `None`
    /// stores every composite arc, as the paper's data structure [14]
    /// does.
    pub max_parallel_arcs: Option<u32>,
}

impl SimplifyParams {
    pub fn up_to(threshold: f32) -> Self {
        SimplifyParams {
            threshold,
            max_new_arcs: None,
            max_parallel_arcs: Some(2),
        }
    }
}

/// Counters from one simplification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    pub cancellations: u64,
    pub arcs_removed: u64,
    pub arcs_created: u64,
    pub skipped_multiplicity: u64,
    pub skipped_valence: u64,
    /// Composite arcs not stored because the pair hit `max_parallel_arcs`.
    pub capped_parallel: u64,
}

/// A configuration or data defect that makes persistence ordering
/// meaningless. Detected up front, before any cancellation, so a
/// returned error leaves the complex untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimplifyError {
    /// `threshold` is NaN: every `persistence > threshold` comparison is
    /// false, so the loop would cancel *everything* regardless of
    /// persistence. (`+inf` remains a legal "simplify fully" request.)
    NanThreshold,
    /// A live node carries a non-finite function value; persistences
    /// involving it are NaN/inf and would corrupt the heap order.
    NonFiniteValue { addr: u64, value: f32 },
}

impl fmt::Display for SimplifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplifyError::NanThreshold => write!(f, "simplification threshold is NaN"),
            SimplifyError::NonFiniteValue { addr, value } => {
                write!(f, "node at address {addr} has non-finite value {value}")
            }
        }
    }
}

impl std::error::Error for SimplifyError {}

/// Forward target of a cancelled extremum whose saddle had no surviving
/// sibling extremum (matches `msp_segment::DRAIN_ADDR`).
pub const FORWARD_DRAIN: u64 = u64::MAX;

/// The key that decides which legal pair is cancelled next.
pub enum CancelOrder {
    /// Classic persistence `|f(u) − f(l)|`.
    Difference,
    /// Manifold size: the region size (vertex/voxel count from the
    /// segmentation label tables) of the extremum the cancellation would
    /// remove; saddle–saddle pairs key 0. The map is updated in place as
    /// cancellations merge regions — the forward target absorbs the dead
    /// extremum's size — so a key can only ever grow, which keeps the
    /// lazily-reinserted heap order sound.
    Count(HashMap<u64, u64>),
}

/// One cancellation as logged by [`simplify_with`] — everything a
/// positional replay needs to repeat it on the same base complex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CancelRecord {
    /// Global address of the upper (index d) node.
    pub upper_addr: u64,
    /// Global address of the lower (index d−1) node.
    pub lower_addr: u64,
    /// `|f(u) − f(l)|`, regardless of ordering.
    pub persistence: f32,
    /// The ordering key the pair was cancelled at (equals `persistence`
    /// under [`CancelOrder::Difference`]).
    pub key: f32,
    /// Segmentation forward entry `(dead extremum, survivor)` when the
    /// cancellation killed an extremum.
    pub forward: Option<(u64, u64)>,
}

/// Why a recorded cancellation cannot be re-executed on this complex —
/// the record does not describe a legal cancellation of the current
/// state, i.e. the replay base or prefix does not match the recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// No live node at this address.
    UnknownNode { addr: u64 },
    /// The pair is not connected by exactly one live arc.
    BadMultiplicity { upper: u64, lower: u64, n: usize },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownNode { addr } => {
                write!(f, "replay: no live node at address {addr:#x}")
            }
            ReplayError::BadMultiplicity { upper, lower, n } => write!(
                f,
                "replay: pair {upper:#x}/{lower:#x} has multiplicity {n}, want 1"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Run persistence simplification up to `params.threshold`.
pub fn simplify(
    ms: &mut MsComplex,
    params: SimplifyParams,
) -> Result<SimplifyStats, SimplifyError> {
    simplify_forwarding(ms, params, None)
}

/// Like [`simplify`], additionally recording a *forward entry*
/// `(dead_addr, target_addr)` for every extremum the pass cancels:
/// a `(1-saddle, min)` cancellation forwards the dead minimum to the
/// lowest other minimum adjacent to the saddle (ties broken by address),
/// a `(max, 2-saddle)` cancellation forwards the dead maximum to the
/// highest other maximum adjacent to the saddle. A saddle with no other
/// extremum neighbour forwards to [`FORWARD_DRAIN`]. Targets may
/// themselves be cancelled later — consumers resolve chains by path
/// compression. Saddle-saddle cancellations record nothing.
pub fn simplify_forwarding(
    ms: &mut MsComplex,
    params: SimplifyParams,
    forwards: Option<&mut Vec<(u64, u64)>>,
) -> Result<SimplifyStats, SimplifyError> {
    simplify_with(ms, params, &mut CancelOrder::Difference, None, forwards)
}

/// Keyed simplification: cancel legal pairs in increasing `order`-key
/// order while the key is at most `params.threshold` (so for
/// [`CancelOrder::Count`] the threshold is a region size, not a
/// persistence). Optionally logs every executed cancellation to `log`
/// and forward entries to `forwards`. With [`CancelOrder::Difference`],
/// no logging, and no forwarding this is exactly [`simplify`].
pub fn simplify_with(
    ms: &mut MsComplex,
    params: SimplifyParams,
    order: &mut CancelOrder,
    mut log: Option<&mut Vec<CancelRecord>>,
    mut forwards: Option<&mut Vec<(u64, u64)>>,
) -> Result<SimplifyStats, SimplifyError> {
    if params.threshold.is_nan() {
        return Err(SimplifyError::NanThreshold);
    }
    if let Some(bad) = ms.nodes.iter().find(|n| n.alive && !n.value.is_finite()) {
        return Err(SimplifyError::NonFiniteValue {
            addr: bad.addr,
            value: bad.value,
        });
    }
    let mut stats = SimplifyStats::default();
    let mut since_prune = 0u32;
    let mut heap: BinaryHeap<Reverse<(OrderedF32, ArcId)>> = BinaryHeap::new();
    for (i, _) in ms.arcs.iter().enumerate().filter(|(_, a)| a.alive) {
        push_candidate(ms, i as ArcId, order, &mut heap);
    }
    while let Some(Reverse((k, a))) = heap.pop() {
        if !ms.arcs[a as usize].alive {
            continue;
        }
        let arc = ms.arcs[a as usize];
        let (u, l) = (arc.upper, arc.lower);
        let now = order_key(ms, order, u, l);
        if OrderedF32::new(now) != k {
            // Stale key: a Count size grew since the push. Reinsert at
            // the current key; everything still in the heap sits at or
            // above `k` and true keys never shrink, so the ordering and
            // the break below stay sound. (Difference keys never change,
            // so this branch is unreachable there.)
            debug_assert!(now > k.value());
            heap.push(Reverse((OrderedF32::new(now), a)));
            continue;
        }
        if now > params.threshold {
            break; // heap is key-ordered; nothing lower remains
        }
        if ms.nodes[u as usize].boundary || ms.nodes[l as usize].boundary {
            continue; // boundary nodes are anchors for gluing
        }
        if ms.multiplicity(u, l) != 1 {
            stats.skipped_multiplicity += 1;
            continue;
        }
        // neighbourhood arcs
        let above: Vec<ArcId> = ms.arcs_above(l).filter(|&x| x != a).collect();
        let below: Vec<ArcId> = ms.arcs_below(u).filter(|&x| x != a).collect();
        // arcs from u into l other than `a` cannot exist here (mult == 1),
        // but u may have other *upward* arcs and l other *downward* arcs —
        // those are simply deleted with their node.
        let new_count = above.len() as u64 * below.len() as u64;
        if let Some(cap) = params.max_new_arcs {
            if new_count > cap {
                stats.skipped_valence += 1;
                continue;
            }
        }
        let current = persistence(ms, u, l);
        let (upper_addr, lower_addr) = (ms.nodes[u as usize].addr, ms.nodes[l as usize].addr);
        let ord: &CancelOrder = order;
        let fwd = execute_cancellation(
            ms,
            a,
            &above,
            &below,
            current,
            params.max_parallel_arcs,
            &mut stats,
            |m, id| push_candidate(m, id, ord, &mut heap),
        );
        if let CancelOrder::Count(sizes) = &mut *order {
            if let Some((dead, target)) = fwd {
                let amount = sizes.remove(&dead).unwrap_or(0);
                if target != FORWARD_DRAIN && amount > 0 {
                    *sizes.entry(target).or_insert(0) += amount;
                }
            }
        }
        if let Some(log) = log.as_deref_mut() {
            log.push(CancelRecord {
                upper_addr,
                lower_addr,
                persistence: current,
                key: now,
                forward: fwd,
            });
        }
        if let Some(fw) = forwards.as_deref_mut() {
            if let Some(e) = fwd {
                fw.push(e);
            }
        }
        since_prune += 1;
        if since_prune == 512 {
            ms.prune_dead_adjacency();
            since_prune = 0;
        }
    }
    Ok(stats)
}

/// Re-execute one recorded cancellation, identified by the pair's global
/// addresses (node/arc ids are not stable across compaction or the
/// wire). The connecting arc is recovered through the legality invariant
/// — a cancelled pair has multiplicity exactly 1 at execution time — and
/// the cancellation body is [`execute_cancellation`], shared with the
/// live loop, so a positional replay of a [`CancelRecord`] log rebuilds
/// the complex bit-identically. Returns the forward entry.
pub fn replay_cancellation(
    ms: &mut MsComplex,
    upper_addr: u64,
    lower_addr: u64,
    max_parallel_arcs: Option<u32>,
    stats: &mut SimplifyStats,
) -> Result<Option<(u64, u64)>, ReplayError> {
    let u = ms
        .node_at(upper_addr)
        .ok_or(ReplayError::UnknownNode { addr: upper_addr })?;
    let l = ms
        .node_at(lower_addr)
        .ok_or(ReplayError::UnknownNode { addr: lower_addr })?;
    let connecting: Vec<ArcId> = ms
        .arcs_below(u)
        .filter(|&x| ms.arcs[x as usize].lower == l)
        .collect();
    if connecting.len() != 1 {
        return Err(ReplayError::BadMultiplicity {
            upper: upper_addr,
            lower: lower_addr,
            n: connecting.len(),
        });
    }
    let a = connecting[0];
    let above: Vec<ArcId> = ms.arcs_above(l).filter(|&x| x != a).collect();
    let below: Vec<ArcId> = ms.arcs_below(u).filter(|&x| x != a).collect();
    let current = persistence(ms, u, l);
    Ok(execute_cancellation(
        ms,
        a,
        &above,
        &below,
        current,
        max_parallel_arcs,
        stats,
        |_, _| {},
    ))
}

/// Execute one legal cancellation of arc `a = (u, l)`: create the splice
/// arcs over `above × below` (respecting the parallel-arc cap), delete
/// every arc incident to the pair, kill both nodes, and append the
/// hierarchy record. `on_new_arc` sees each created arc (the live loop
/// pushes heap candidates; replay ignores it). Returns the segmentation
/// forward entry, if the cancellation killed an extremum.
#[allow(clippy::too_many_arguments)]
fn execute_cancellation(
    ms: &mut MsComplex,
    a: ArcId,
    above: &[ArcId],
    below: &[ArcId],
    persistence: f32,
    max_parallel_arcs: Option<u32>,
    stats: &mut SimplifyStats,
    mut on_new_arc: impl FnMut(&MsComplex, ArcId),
) -> Option<(u64, u64)> {
    let arc = ms.arcs[a as usize];
    let (u, l) = (arc.upper, arc.lower);
    let fwd = forward_entry(ms, u, l, above, below);
    // create replacement arcs x -> y
    let mut n_created = 0u32;
    for &a1 in above {
        for &a2 in below {
            let x = ms.arcs[a1 as usize].upper;
            let y = ms.arcs[a2 as usize].lower;
            debug_assert_ne!(x, u);
            debug_assert_ne!(y, l);
            if let Some(cap) = max_parallel_arcs {
                if ms.multiplicity(x, y) >= cap as usize {
                    stats.capped_parallel += 1;
                    continue;
                }
            }
            let g = ms.add_cancel_geom(
                ms.arcs[a1 as usize].geom,
                ms.arcs[a as usize].geom,
                ms.arcs[a2 as usize].geom,
            );
            let id = ms.add_arc(x, y, g);
            on_new_arc(ms, id);
            stats.arcs_created += 1;
            n_created += 1;
        }
    }
    // delete all arcs incident to u or l, then the nodes
    let doomed: Vec<ArcId> = ms.arcs_of(u).chain(ms.arcs_of(l)).collect();
    let mut n_deleted = 0u32;
    for d in doomed {
        if ms.arcs[d as usize].alive {
            ms.kill_arc(d);
            n_deleted += 1;
        }
    }
    ms.kill_node(u, persistence);
    ms.kill_node(l, persistence);
    stats.arcs_removed += n_deleted as u64;
    stats.cancellations += 1;
    ms.hierarchy.push(Cancellation {
        persistence,
        upper: u,
        lower: l,
        n_deleted_arcs: n_deleted,
        n_created_arcs: n_created,
    });
    fwd
}

/// The segmentation forward entry for one cancellation, if it kills an
/// extremum. `above`/`below` are the saddle's surviving neighbour arcs
/// (the cancelled arc already excluded).
fn forward_entry(
    ms: &MsComplex,
    u: NodeId,
    l: NodeId,
    above: &[ArcId],
    below: &[ArcId],
) -> Option<(u64, u64)> {
    let key = |n: NodeId| {
        (
            OrderedF32::new(ms.nodes[n as usize].value),
            ms.nodes[n as usize].addr,
        )
    };
    if ms.nodes[l as usize].index == 0 {
        // (1-saddle u, min l): the dead minimum's basin drains to the
        // lowest other minimum adjacent to u.
        let target = below
            .iter()
            .map(|&a2| key(ms.arcs[a2 as usize].lower))
            .min()
            .map(|(_, addr)| addr)
            .unwrap_or(FORWARD_DRAIN);
        Some((ms.nodes[l as usize].addr, target))
    } else if ms.nodes[u as usize].index == 3 {
        // (max u, 2-saddle l): the dead maximum's mountain is absorbed
        // by the highest other maximum adjacent to l.
        let target = above
            .iter()
            .map(|&a1| key(ms.arcs[a1 as usize].upper))
            .max()
            .map(|(_, addr)| addr)
            .unwrap_or(FORWARD_DRAIN);
        Some((ms.nodes[u as usize].addr, target))
    } else {
        None
    }
}

fn persistence(ms: &MsComplex, u: NodeId, l: NodeId) -> f32 {
    (ms.nodes[u as usize].value - ms.nodes[l as usize].value).abs()
}

/// The ordering key of the pair `(u, l)` under `order`.
fn order_key(ms: &MsComplex, order: &CancelOrder, u: NodeId, l: NodeId) -> f32 {
    match order {
        CancelOrder::Difference => persistence(ms, u, l),
        CancelOrder::Count(sizes) => {
            let (un, ln) = (&ms.nodes[u as usize], &ms.nodes[l as usize]);
            if ln.index == 0 {
                *sizes.get(&ln.addr).unwrap_or(&0) as f32
            } else if un.index == 3 {
                *sizes.get(&un.addr).unwrap_or(&0) as f32
            } else {
                0.0
            }
        }
    }
}

fn push_candidate(
    ms: &MsComplex,
    a: ArcId,
    order: &CancelOrder,
    heap: &mut BinaryHeap<Reverse<(OrderedF32, ArcId)>>,
) {
    let arc = &ms.arcs[a as usize];
    let k = order_key(ms, order, arc.upper, arc.lower);
    heap.push(Reverse((OrderedF32::new(k), a)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use crate::wire;
    use msp_grid::decomp::Decomposition;
    use msp_grid::{Dims, ScalarField};
    use msp_morse::TraceLimits;

    fn serial(f: &ScalarField) -> MsComplex {
        let d = Decomposition::bisect(f.dims(), 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default()).0
    }

    /// Morse-index alternating sum is invariant under cancellation.
    fn chi(ms: &MsComplex) -> i64 {
        let c = ms.node_census();
        c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
    }

    #[test]
    fn full_simplification_of_noise_leaves_chi() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 2);
        let mut ms = serial(&f);
        let chi_before = chi(&ms);
        let stats = simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert!(stats.cancellations > 0);
        assert_eq!(chi(&ms), chi_before);
        ms.check_integrity().unwrap();
        // full simplification leaves only pairs blocked by the
        // multiplicity rule: every remaining live arc must connect nodes
        // joined by two or more arcs (a doubled arc cannot be cancelled)
        for a in ms.arcs.iter().filter(|a| a.alive) {
            assert!(
                ms.multiplicity(a.upper, a.lower) >= 2,
                "a singly-connected pair should have been cancelled"
            );
        }
        // and the complex must have shrunk dramatically
        assert!(ms.n_live_nodes() <= 16, "got {:?}", ms.node_census());
    }

    #[test]
    fn threshold_zero_cancels_only_zero_persistence() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 2);
        let mut ms = serial(&f);
        let live_before = ms.n_live_nodes();
        simplify(&mut ms, SimplifyParams::up_to(0.0)).unwrap();
        // distinct noise values: nothing at persistence exactly 0 unless
        // SoS plateaus — allow few, forbid mass cancellation
        assert!(ms.n_live_nodes() >= live_before / 2);
    }

    #[test]
    fn two_bumps_survive_small_threshold() {
        let dims = Dims::new(17, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let b = |cx: f32| {
                (-((x as f32 - cx).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2))
                    / 6.0)
                    .exp()
            };
            b(4.0) + b(12.0) + 0.001 * msp_synth::basic::hash_unit(9, dims.vertex_index(x, y, z))
        });
        let mut ms = serial(&f);
        simplify(&mut ms, SimplifyParams::up_to(0.05)).unwrap();
        let census = ms.node_census();
        assert_eq!(census[3], 2, "both maxima must survive 5%: {:?}", census);
        // simplifying all the way merges them
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert_eq!(
            ms.node_census()[3],
            0,
            "maxima die on a box when fully simplified"
        );
    }

    #[test]
    fn cancelled_pairs_ordered_by_persistence() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 44);
        let mut ms = serial(&f);
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        // each cancellation's persistence is within threshold and the
        // hierarchy is (weakly) monotone up to re-ordering slack created
        // by newly-created arcs; verify every recorded persistence is
        // >= the minimum of later... the strong property: recorded
        // persistences are exactly |f(u) - f(l)| — checked in the loop —
        // and the FIRST cancellation is the global minimum candidate.
        assert!(!ms.hierarchy.is_empty());
        for c in &ms.hierarchy {
            assert!(c.persistence >= 0.0);
        }
    }

    #[test]
    fn boundary_nodes_never_cancelled() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 12);
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let (mut ms, _) = build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
            let boundary_before: Vec<u64> = ms
                .nodes
                .iter()
                .filter(|n| n.boundary)
                .map(|n| n.addr)
                .collect();
            simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
            for addr in boundary_before {
                let id = ms.node_at(addr).expect("boundary node survived");
                assert!(ms.nodes[id as usize].alive);
            }
        }
    }

    #[test]
    fn valence_guard_skips() {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 21);
        let mut ms = serial(&f);
        let stats = simplify(
            &mut ms,
            SimplifyParams {
                threshold: f32::INFINITY,
                max_new_arcs: Some(0),
                max_parallel_arcs: Some(2),
            },
        )
        .unwrap();
        // with a zero cap, only cancellations creating no arcs happen
        assert_eq!(stats.arcs_created, 0);
    }

    #[test]
    fn nan_threshold_and_nan_values_are_typed_errors() {
        let f = msp_synth::white_noise(Dims::new(6, 6, 6), 3);
        let mut ms = serial(&f);
        assert_eq!(
            simplify(&mut ms, SimplifyParams::up_to(f32::NAN)),
            Err(SimplifyError::NanThreshold)
        );
        let victim = ms.nodes.iter().position(|n| n.alive).unwrap();
        let addr = ms.nodes[victim].addr;
        ms.nodes[victim].value = f32::NAN;
        let err = simplify(&mut ms, SimplifyParams::up_to(0.1)).unwrap_err();
        match err {
            SimplifyError::NonFiniteValue { addr: a, value } => {
                assert_eq!(a, addr);
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn forward_entries_cover_every_cancelled_extremum() {
        use std::collections::HashMap;
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 31);
        let mut ms = serial(&f);
        let mut fw: Vec<(u64, u64)> = Vec::new();
        simplify_forwarding(&mut ms, SimplifyParams::up_to(f32::INFINITY), Some(&mut fw)).unwrap();
        assert!(!fw.is_empty());
        // one entry per cancelled extremum, no extremum forwarded twice
        let dead_extrema = ms
            .hierarchy
            .iter()
            .filter(|c| {
                ms.nodes[c.lower as usize].index == 0 || ms.nodes[c.upper as usize].index == 3
            })
            .count();
        assert_eq!(fw.len(), dead_extrema);
        let map: HashMap<u64, u64> = fw.iter().copied().collect();
        assert_eq!(map.len(), fw.len(), "an extremum was forwarded twice");
        // every chain terminates at a live extremum (or the drain)
        for &(dead, _) in &fw {
            let mut cur = dead;
            let mut hops = 0;
            while let Some(&next) = map.get(&cur) {
                cur = next;
                hops += 1;
                assert!(hops <= fw.len(), "forward cycle at {dead:#x}");
                if cur == FORWARD_DRAIN {
                    break;
                }
            }
            if cur != FORWARD_DRAIN {
                let id = ms.node_at(cur).expect("chain ends at a known node");
                let n = &ms.nodes[id as usize];
                assert!(n.alive, "chain from {dead:#x} ends at dead node");
                assert!(n.index == 0 || n.index == 3);
            }
        }
    }

    #[test]
    fn plain_simplify_unaffected_by_forwarding_path() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 5);
        let mut a = serial(&f);
        let mut b = serial(&f);
        let mut fw = Vec::new();
        let sa = simplify(&mut a, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        let sb = simplify_forwarding(&mut b, SimplifyParams::up_to(f32::INFINITY), Some(&mut fw))
            .unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.hierarchy.len(), b.hierarchy.len());
    }

    #[test]
    fn hierarchy_records_match_stats() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 77);
        let mut ms = serial(&f);
        let stats = simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        assert_eq!(stats.cancellations as usize, ms.hierarchy.len());
        let created: u64 = ms.hierarchy.iter().map(|c| c.n_created_arcs as u64).sum();
        assert_eq!(created, stats.arcs_created);
    }

    #[test]
    fn logged_run_matches_plain_run_and_stats() {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 13);
        let mut a = serial(&f);
        let mut b = serial(&f);
        let mut log = Vec::new();
        let sa = simplify(&mut a, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        let sb = simplify_with(
            &mut b,
            SimplifyParams::up_to(f32::INFINITY),
            &mut CancelOrder::Difference,
            Some(&mut log),
            None,
        )
        .unwrap();
        assert_eq!(sa, sb);
        assert_eq!(log.len() as u64, sb.cancellations);
        // the log's pairs are exactly the hierarchy's pairs, in order,
        // and difference keys equal persistences
        for (r, c) in log.iter().zip(&b.hierarchy) {
            assert_eq!(r.persistence, c.persistence);
            assert_eq!(r.key, c.persistence);
        }
        a.compact();
        b.compact();
        assert_eq!(wire::serialize(&a), wire::serialize(&b));
    }

    /// Positional prefix replay of a logged run is bit-identical to a
    /// direct run stopped at the same threshold.
    #[test]
    fn replayed_prefix_matches_direct_simplify() {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 71);
        let base = serial(&f);
        let mut log = Vec::new();
        let mut full = base.clone();
        simplify_with(
            &mut full,
            SimplifyParams::up_to(f32::INFINITY),
            &mut CancelOrder::Difference,
            Some(&mut log),
            None,
        )
        .unwrap();
        assert!(log.len() > 4);
        for t in [0.0f32, log[log.len() / 2].key, f32::INFINITY] {
            let mut direct = base.clone();
            let mut dfw = Vec::new();
            simplify_forwarding(&mut direct, SimplifyParams::up_to(t), Some(&mut dfw)).unwrap();
            direct.compact();
            let k = log.iter().position(|r| r.key > t).unwrap_or(log.len());
            let mut replayed = base.clone();
            let mut stats = SimplifyStats::default();
            let mut rfw = Vec::new();
            for r in &log[..k] {
                let fwd = replay_cancellation(
                    &mut replayed,
                    r.upper_addr,
                    r.lower_addr,
                    Some(2),
                    &mut stats,
                )
                .unwrap();
                assert_eq!(fwd, r.forward);
                if let Some(e) = fwd {
                    rfw.push(e);
                }
            }
            replayed.compact();
            assert_eq!(
                wire::serialize(&direct),
                wire::serialize(&replayed),
                "threshold {t}"
            );
            assert_eq!(dfw, rfw, "forward entries at threshold {t}");
        }
    }

    /// Count ordering: keys come from (and update) the size map, the
    /// sequence differs from the difference ordering, and a logged count
    /// run replays bit-identically too.
    #[test]
    fn count_order_uses_and_updates_sizes() {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), 23);
        let base = serial(&f);
        // synthetic region sizes: pseudo-random positive size per extremum
        let sizes: HashMap<u64, u64> = base
            .nodes
            .iter()
            .filter(|n| n.alive && (n.index == 0 || n.index == 3))
            .map(|n| (n.addr, 1 + (n.addr % 97)))
            .collect();
        let mut log = Vec::new();
        let mut full = base.clone();
        simplify_with(
            &mut full,
            SimplifyParams::up_to(f32::INFINITY),
            &mut CancelOrder::Count(sizes.clone()),
            Some(&mut log),
            None,
        )
        .unwrap();
        assert!(!log.is_empty());
        // extremum cancellations carry their region size as the key
        assert!(log
            .iter()
            .any(|r| r.forward.is_some() && r.key > 0.0 && r.key != r.persistence));
        // replay the full sequence: bit-identical complex
        let mut replayed = base.clone();
        let mut stats = SimplifyStats::default();
        for r in &log {
            replay_cancellation(
                &mut replayed,
                r.upper_addr,
                r.lower_addr,
                Some(2),
                &mut stats,
            )
            .unwrap();
        }
        full.compact();
        replayed.compact();
        assert_eq!(wire::serialize(&full), wire::serialize(&replayed));
        // and the sequence genuinely differs from the difference ordering
        let mut dlog = Vec::new();
        let mut d = base.clone();
        simplify_with(
            &mut d,
            SimplifyParams::up_to(f32::INFINITY),
            &mut CancelOrder::Difference,
            Some(&mut dlog),
            None,
        )
        .unwrap();
        let pairs = |l: &[CancelRecord]| {
            l.iter()
                .map(|r| (r.upper_addr, r.lower_addr))
                .collect::<Vec<_>>()
        };
        assert_ne!(pairs(&log), pairs(&dlog), "orderings should differ");
    }

    #[test]
    fn replay_on_wrong_base_is_a_typed_error() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 2);
        let mut ms = serial(&f);
        let mut stats = SimplifyStats::default();
        // an address that is not a node
        let err = replay_cancellation(&mut ms, u64::MAX - 1, 0, Some(2), &mut stats);
        assert!(matches!(err, Err(ReplayError::UnknownNode { .. })));
    }
}
