//! Gluing MS complexes of neighbouring block groups (paper §IV-F3).
//!
//! Both complexes computed their gradient identically on the shared
//! boundary, so every critical cell there is a node in both — these
//! shared nodes anchor the glue:
//!
//! 1. every node of the incoming complex not matched by address in the
//!    root is added;
//! 2. every arc of the incoming complex is added **unless it is a
//!    guaranteed duplicate**: both endpoints are shared-boundary matches
//!    *and* the arc's entire V-path lies inside the region the root's
//!    member blocks already cover. Both sides computed the gradient
//!    identically everywhere their regions overlap, so such an arc
//!    already exists in the root; an arc that leaves the overlap
//!    through the incoming group's interior exists only incoming-side
//!    and is added even when its endpoints are shared. (Under uniform
//!    bisection the merged region is convex and every both-endpoints-
//!    shared arc stays in the shared face, so this degenerates to the
//!    classic face-restricted rule; the region test is what makes
//!    gluing sound for irregular block trees, where the already-merged
//!    region can be L-shaped and neighbours may share only an edge or
//!    a sub-rectangle of a face.)
//! 3. boundary flags are recomputed against the merged member-block set,
//!    turning interior boundary artifacts into cancellation candidates.
//!
//! Malformed inputs (uncompacted complexes, mismatched domains, address
//! collisions at different Morse indices) are reported as [`GlueError`]s
//! instead of panicking, so a corrupted peer complex arriving over the
//! wire cannot take the rank down.

use crate::skeleton::{GeomId, MsComplex, NodeId};
use msp_grid::{Decomposition, RCoord};
use std::fmt;

/// Statistics from one glue operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlueStats {
    pub matched_nodes: u64,
    pub added_nodes: u64,
    pub added_arcs: u64,
    pub skipped_shared_arcs: u64,
}

/// A structural defect detected while gluing. Each variant corresponds
/// to a former assert/debug_assert; all are now checked in release
/// builds too, since gluing consumes wire-decoded peer data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlueError {
    /// The two complexes disagree on the refined dims of the full
    /// dataset — their global addresses are not comparable.
    DomainMismatch,
    /// The incoming complex carries a dead (tombstoned) node: it was not
    /// compacted before shipping.
    DeadIncomingNode { addr: u64 },
    /// The incoming complex carries a dead (tombstoned) arc.
    DeadIncomingArc { upper: u64, lower: u64 },
    /// Both complexes hold a node at the same global address but with
    /// different Morse indices — the gradients disagreed on a shared
    /// face.
    IndexMismatch { addr: u64, root: u8, incoming: u8 },
    /// An arc whose V-path lies entirely inside the root's covered
    /// region is missing from the root, contradicting the
    /// boundary-identical-gradient contract.
    MissingSharedArc { upper: u64, lower: u64 },
}

impl fmt::Display for GlueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlueError::DomainMismatch => write!(f, "complexes do not share a refined domain"),
            GlueError::DeadIncomingNode { addr } => {
                write!(f, "incoming complex not compacted: dead node at {addr}")
            }
            GlueError::DeadIncomingArc { upper, lower } => {
                write!(
                    f,
                    "incoming complex not compacted: dead arc {upper} -> {lower}"
                )
            }
            GlueError::IndexMismatch {
                addr,
                root,
                incoming,
            } => write!(
                f,
                "node at address {addr} has index {root} in the root but {incoming} incoming"
            ),
            GlueError::MissingSharedArc { upper, lower } => write!(
                f,
                "shared-face arc {upper} -> {lower} missing from the root"
            ),
        }
    }
}

impl std::error::Error for GlueError {}

/// Glue `incoming` onto `root`. Both must be compacted (live-only)
/// complexes over the same refined grid.
pub fn glue(
    root: &mut MsComplex,
    incoming: &MsComplex,
    decomp: &Decomposition,
) -> Result<GlueStats, GlueError> {
    glue_with(root, incoming, decomp, true)
}

/// True when every cell of the V-path geometry `g` (resolved against
/// `incoming`) lies inside the region covered by the blocks in
/// `members`. This is the generalized-glue duplicate test: the gradient
/// is computed identically everywhere two groups' regions overlap, so a
/// path confined to the overlap was traced by both sides.
fn path_in_region(
    incoming: &MsComplex,
    g: GeomId,
    decomp: &Decomposition,
    members: &[u32],
) -> bool {
    incoming.flatten_geom(g).iter().all(|&addr| {
        let c = RCoord::from_address(addr, &incoming.refined);
        decomp
            .owners(c)
            .as_slice()
            .iter()
            .any(|id| members.contains(id))
    })
}

/// [`glue`] with explicit control over shared-arc deduplication.
///
/// In the standard pipeline (`dedup_shared_arcs = true`) an arc whose
/// endpoints both match existing root nodes *and* whose V-path stays
/// inside the root's covered region is guaranteed to be a duplicate and
/// is skipped; both-endpoints-shared arcs that leave the overlap (only
/// possible with irregular decompositions, where the merged region can
/// be non-convex) are real and are added. Complexes produced by
/// [partitioning](../../msp_core/redistribute/index.html) store each arc
/// exactly once, so reassembling them must *not* drop those arcs —
/// pass `false`.
///
/// On error the root may hold a partially-applied glue; callers treat
/// the error as fatal for the merge and do not reuse the root.
pub fn glue_with(
    root: &mut MsComplex,
    incoming: &MsComplex,
    decomp: &Decomposition,
    dedup_shared_arcs: bool,
) -> Result<GlueStats, GlueError> {
    if root.refined != incoming.refined {
        return Err(GlueError::DomainMismatch);
    }
    let mut stats = GlueStats::default();

    // map incoming node id -> (root node id, was it a shared match).
    // Matching is by global address alone: in the standard pipeline only
    // shared-boundary critical cells can collide (interior cells are
    // unique to a block), and partitioned complexes additionally carry
    // stub replicas that must unify with their originals.
    let mut node_map: Vec<(NodeId, bool)> = Vec::with_capacity(incoming.nodes.len());
    for n in &incoming.nodes {
        if !n.alive {
            return Err(GlueError::DeadIncomingNode { addr: n.addr });
        }
        if let Some(existing) = root.node_at(n.addr) {
            let root_index = root.nodes[existing as usize].index;
            if root_index != n.index {
                return Err(GlueError::IndexMismatch {
                    addr: n.addr,
                    root: root_index,
                    incoming: n.index,
                });
            }
            stats.matched_nodes += 1;
            node_map.push((existing, true));
            continue;
        }
        let id = root.add_node(n.addr, n.index, n.value, n.boundary);
        stats.added_nodes += 1;
        node_map.push((id, false));
    }

    let mut geom_map = std::collections::HashMap::new();
    for a in &incoming.arcs {
        if !a.alive {
            return Err(GlueError::DeadIncomingArc {
                upper: incoming.nodes[a.upper as usize].addr,
                lower: incoming.nodes[a.lower as usize].addr,
            });
        }
        let (u, u_shared) = node_map[a.upper as usize];
        let (l, l_shared) = node_map[a.lower as usize];
        if dedup_shared_arcs
            && u_shared
            && l_shared
            && path_in_region(incoming, a.geom, decomp, &root.member_blocks)
        {
            // the arc lies entirely in the region the root already
            // covers, so the root traced it too; skip the duplicate
            if root.multiplicity(u, l) == 0 {
                return Err(GlueError::MissingSharedArc {
                    upper: root.nodes[u as usize].addr,
                    lower: root.nodes[l as usize].addr,
                });
            }
            stats.skipped_shared_arcs += 1;
            continue;
        }
        let g = incoming.copy_geom_into(a.geom, root, &mut geom_map);
        root.add_arc(u, l, g);
        stats.added_arcs += 1;
    }

    // merged member set
    let mut members = root.member_blocks.clone();
    members.extend_from_slice(&incoming.member_blocks);
    members.sort_unstable();
    members.dedup();
    root.member_blocks = members;
    Ok(stats)
}

/// Glue several complexes onto a root and recompute boundary flags once.
pub fn glue_all(
    root: &mut MsComplex,
    incoming: &[MsComplex],
    decomp: &Decomposition,
) -> Result<GlueStats, GlueError> {
    glue_all_with(root, incoming, decomp, true)
}

/// [`glue_all`] with explicit shared-arc deduplication control (see
/// [`glue_with`]).
pub fn glue_all_with(
    root: &mut MsComplex,
    incoming: &[MsComplex],
    decomp: &Decomposition,
    dedup_shared_arcs: bool,
) -> Result<GlueStats, GlueError> {
    let mut total = GlueStats::default();
    for inc in incoming {
        let s = glue_with(root, inc, decomp, dedup_shared_arcs)?;
        total.matched_nodes += s.matched_nodes;
        total.added_nodes += s.added_nodes;
        total.added_arcs += s.added_arcs;
        total.skipped_shared_arcs += s.skipped_shared_arcs;
    }
    root.reflag_boundaries(decomp);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use crate::simplify::{simplify, SimplifyParams};
    use msp_grid::{Dims, ScalarField};
    use msp_morse::TraceLimits;

    fn block_complexes(f: &ScalarField, n_blocks: u32) -> (Decomposition, Vec<MsComplex>) {
        let d = Decomposition::bisect(f.dims(), n_blocks);
        let cs = d
            .blocks()
            .iter()
            .map(|b| {
                let (mut ms, _) =
                    build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
                ms.compact();
                ms
            })
            .collect();
        (d, cs)
    }

    #[test]
    fn glue_two_blocks_conserves_distinct_nodes() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 31);
        let (d, mut cs) = block_complexes(&f, 2);
        let unique_addrs: std::collections::HashSet<u64> = cs
            .iter()
            .flat_map(|c| c.nodes.iter().map(|n| n.addr))
            .collect();
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        let stats = glue_all(&mut root, &[inc], &d).unwrap();
        assert!(stats.matched_nodes > 0, "shared plane must anchor the glue");
        assert_eq!(root.n_live_nodes() as usize, unique_addrs.len());
        root.check_integrity().unwrap();
    }

    #[test]
    fn reflag_clears_interior_boundary_nodes() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 5);
        let (d, mut cs) = block_complexes(&f, 2);
        let inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        glue_all(&mut root, &[inc], &d).unwrap();
        // both blocks merged: complex covers the whole domain, so no node
        // may remain flagged boundary
        assert!(
            root.nodes.iter().filter(|n| n.alive).all(|n| !n.boundary),
            "full merge leaves no boundary nodes"
        );
    }

    #[test]
    fn partial_merge_keeps_outer_boundary() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 5);
        let (d, cs) = block_complexes(&f, 4);
        let mut root = cs[0].clone();
        glue_all(&mut root, &[cs[1].clone()], &d).unwrap();
        assert_eq!(root.member_blocks.len(), 2);
        // nodes shared with blocks 2/3 must stay boundary
        let still_boundary = root.nodes.iter().filter(|n| n.alive && n.boundary).count();
        assert!(still_boundary > 0, "faces to unmerged blocks stay boundary");
    }

    #[test]
    fn uncompacted_incoming_is_a_typed_error() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 8);
        let (d, mut cs) = block_complexes(&f, 2);
        let mut inc = cs.pop().unwrap();
        let mut root = cs.pop().unwrap();
        // tombstone one node without compacting: the glue must refuse
        let victim = inc
            .nodes
            .iter()
            .position(|n| n.alive && !n.boundary)
            .expect("interior node exists") as u32;
        for a in inc.arcs_of(victim).collect::<Vec<_>>() {
            inc.kill_arc(a);
        }
        let addr = inc.nodes[victim as usize].addr;
        inc.kill_node(victim, 0.0);
        assert_eq!(
            glue_with(&mut root, &inc, &d, true),
            Err(GlueError::DeadIncomingNode { addr })
        );
    }

    #[test]
    fn domain_mismatch_is_a_typed_error() {
        let a = msp_synth::white_noise(Dims::new(9, 9, 9), 1);
        let b = msp_synth::white_noise(Dims::new(9, 9, 5), 1);
        let (da, mut ca) = block_complexes(&a, 1);
        let (_db, mut cb) = block_complexes(&b, 1);
        let mut root = ca.pop().unwrap();
        let inc = cb.pop().unwrap();
        assert_eq!(
            glue_with(&mut root, &inc, &da, true),
            Err(GlueError::DomainMismatch)
        );
    }

    /// Canonical form of a complex for equality-of-content checks:
    /// sorted live node records and sorted live arc records with fully
    /// flattened geometry (ids and storage order abstracted away).
    type CanonNodes = Vec<(u64, u8)>;
    type CanonArcs = Vec<(u64, u64, Vec<u64>)>;
    fn canon(ms: &MsComplex) -> (CanonNodes, CanonArcs) {
        let mut nodes: Vec<(u64, u8)> = ms
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| (n.addr, n.index))
            .collect();
        nodes.sort_unstable();
        let mut arcs: Vec<(u64, u64, Vec<u64>)> = ms
            .arcs
            .iter()
            .filter(|a| a.alive)
            .map(|a| {
                (
                    ms.nodes[a.upper as usize].addr,
                    ms.nodes[a.lower as usize].addr,
                    ms.flatten_geom(a.geom),
                )
            })
            .collect();
        arcs.sort_unstable();
        (nodes, arcs)
    }

    #[test]
    fn irregular_tree_glue_is_order_independent() {
        // irregular random block trees produce non-convex partially
        // merged regions and neighbours sharing only edges or
        // sub-rectangles; gluing the same set in any order must yield
        // the same complex, and it must pass integrity
        let dims = Dims::new(13, 11, 9);
        for seed in [3u64, 17, 29] {
            let f = msp_synth::white_noise(dims, seed);
            let d = Decomposition::random_tree(dims, 5, seed);
            let cs: Vec<MsComplex> = d
                .blocks()
                .iter()
                .map(|b| {
                    let (mut ms, _) =
                        build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
                    ms.compact();
                    ms
                })
                .collect();
            let mut reference = None;
            for order in [
                vec![0usize, 1, 2, 3, 4],
                vec![4, 2, 0, 3, 1],
                vec![2, 4, 1, 0, 3],
            ] {
                let mut root = cs[order[0]].clone();
                let rest: Vec<MsComplex> = order[1..].iter().map(|&i| cs[i].clone()).collect();
                glue_all(&mut root, &rest, &d).unwrap();
                root.check_integrity().unwrap();
                assert!(
                    root.nodes.iter().filter(|n| n.alive).all(|n| !n.boundary),
                    "full irregular merge leaves no boundary nodes"
                );
                let c = canon(&root);
                match &reference {
                    None => reference = Some(c),
                    Some(r) => assert_eq!(r, &c, "seed {seed}, order {order:?}"),
                }
            }
        }
    }

    #[test]
    fn glued_and_serial_agree_after_full_simplification() {
        // The paper's stability property (§V-A): significant features
        // survive blocking. Use a clean two-bump field: after a full merge
        // and matching simplification, the parallel complex must show the
        // same significant maxima as the serial one.
        let dims = Dims::new(17, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let b = |cx: f32| {
                (-((x as f32 - cx).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2))
                    / 6.0)
                    .exp()
            };
            b(4.0) + b(12.0) + 0.001 * msp_synth::basic::hash_unit(3, dims.vertex_index(x, y, z))
        });
        // serial
        let d1 = Decomposition::bisect(dims, 1);
        let (mut serial, _) =
            build_block_complex(&f.extract_block(d1.block(0)), &d1, TraceLimits::default());
        simplify(&mut serial, SimplifyParams::up_to(0.05)).unwrap();
        // parallel: 4 blocks, glue all, then simplify at the same level
        let (d4, mut cs) = block_complexes(&f, 4);
        let mut root = cs.remove(0);
        let rest = std::mem::take(&mut cs);
        glue_all(&mut root, &rest, &d4).unwrap();
        simplify(&mut root, SimplifyParams::up_to(0.05)).unwrap();
        assert_eq!(
            root.node_census()[3],
            serial.node_census()[3],
            "stable maxima must agree (serial {:?} vs parallel {:?})",
            serial.node_census(),
            root.node_census()
        );
        root.check_integrity().unwrap();
    }
}
