//! Visualization and analysis exports of the 1-skeleton.
//!
//! The paper's pipeline ends in interactive visualization (Fig 1); this
//! module writes the living complex in two portable forms:
//!
//! * **legacy VTK polydata** (`.vtk`, ASCII) — nodes as points, arcs as
//!   polylines through their V-path cell centres, with point data
//!   (Morse index, scalar value) and cell data (persistence of the arc's
//!   endpoints) so standard viewers (ParaView, VisIt) colour features
//!   directly;
//! * **CSV node table** — one row per living node for notebook analysis.
//!
//! Refined coordinates map to physical space as `coordinate / 2` (cell
//! centres land on half-integers).

use crate::skeleton::MsComplex;
use std::io::{self, Write};
use std::path::Path;

/// Write the living 1-skeleton as legacy ASCII VTK polydata.
pub fn write_vtk(ms: &MsComplex, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_vtk_to(ms, &mut w)
}

/// [`write_vtk`] into any writer (unit-testable).
pub fn write_vtk_to(ms: &MsComplex, w: &mut impl Write) -> io::Result<()> {
    let refined = ms.refined;
    // collect points: every distinct cell address used by nodes or arc
    // geometry becomes a point
    let mut addrs: Vec<u64> = ms
        .nodes
        .iter()
        .filter(|n| n.alive)
        .map(|n| n.addr)
        .collect();
    let live_arcs: Vec<usize> = ms
        .arcs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.alive)
        .map(|(i, _)| i)
        .collect();
    let arc_paths: Vec<Vec<u64>> = live_arcs
        .iter()
        .map(|&i| ms.flatten_geom(ms.arcs[i].geom))
        .collect();
    for p in &arc_paths {
        addrs.extend_from_slice(p);
    }
    addrs.sort_unstable();
    addrs.dedup();
    let point_of = |addr: u64| addrs.binary_search(&addr).unwrap();

    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "morse-smale 1-skeleton")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {} float", addrs.len())?;
    for &a in &addrs {
        let (i, j, k) = refined.coord(a);
        writeln!(
            w,
            "{} {} {}",
            i as f32 / 2.0,
            j as f32 / 2.0,
            k as f32 / 2.0
        )?;
    }
    // vertices for the critical points
    let live_nodes: Vec<usize> = ms
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.alive)
        .map(|(i, _)| i)
        .collect();
    writeln!(w, "VERTICES {} {}", live_nodes.len(), 2 * live_nodes.len())?;
    for &i in &live_nodes {
        writeln!(w, "1 {}", point_of(ms.nodes[i].addr))?;
    }
    // polylines for the arcs
    let total: usize = arc_paths.iter().map(|p| p.len() + 1).sum();
    writeln!(w, "LINES {} {}", arc_paths.len(), total)?;
    for p in &arc_paths {
        write!(w, "{}", p.len())?;
        for &a in p {
            write!(w, " {}", point_of(a))?;
        }
        writeln!(w)?;
    }
    // point data: Morse index (-1 for plain path points) and value
    writeln!(w, "POINT_DATA {}", addrs.len())?;
    writeln!(w, "SCALARS morse_index int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    let mut index_of = vec![-1i32; addrs.len()];
    for &i in &live_nodes {
        index_of[point_of(ms.nodes[i].addr)] = ms.nodes[i].index as i32;
    }
    for v in &index_of {
        writeln!(w, "{v}")?;
    }
    // cell data: persistence of each arc (|f(upper) − f(lower)|); the
    // node VERTICES cells come first and carry 0
    writeln!(w, "CELL_DATA {}", live_nodes.len() + arc_paths.len())?;
    writeln!(w, "SCALARS arc_persistence float 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for _ in &live_nodes {
        writeln!(w, "0")?;
    }
    for &i in &live_arcs {
        let a = &ms.arcs[i];
        let p = (ms.nodes[a.upper as usize].value - ms.nodes[a.lower as usize].value).abs();
        writeln!(w, "{p}")?;
    }
    w.flush()
}

/// Write the living nodes as a CSV table:
/// `node,index,value,x,y,z,boundary`.
pub fn write_nodes_csv(ms: &MsComplex, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_nodes_csv_to(ms, &mut w)
}

/// [`write_nodes_csv`] into any writer.
pub fn write_nodes_csv_to(ms: &MsComplex, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "node,index,value,x,y,z,boundary")?;
    for (i, n) in ms.nodes.iter().enumerate().filter(|(_, n)| n.alive) {
        let (x, y, z) = ms.refined.coord(n.addr);
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            i,
            n.index,
            n.value,
            x as f32 / 2.0,
            y as f32 / 2.0,
            z as f32 / 2.0,
            n.boundary as u8
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use msp_grid::decomp::Decomposition;
    use msp_grid::Dims;
    use msp_morse::TraceLimits;

    fn sample() -> MsComplex {
        let dims = Dims::new(7, 7, 7);
        let f = msp_synth::white_noise(dims, 5);
        let d = Decomposition::bisect(dims, 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default()).0
    }

    #[test]
    fn vtk_structure_is_well_formed() {
        let ms = sample();
        let mut out = Vec::new();
        write_vtk_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        // declared counts match emitted lines
        let points_decl: usize = text
            .lines()
            .find(|l| l.starts_with("POINTS"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        let points_start = text
            .lines()
            .position(|l| l.starts_with("POINTS"))
            .unwrap();
        let coords: Vec<&str> = text
            .lines()
            .skip(points_start + 1)
            .take(points_decl)
            .collect();
        assert_eq!(coords.len(), points_decl);
        for c in coords {
            assert_eq!(c.split_whitespace().count(), 3);
        }
        let lines_decl: usize = text
            .lines()
            .find(|l| l.starts_with("LINES"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(lines_decl as u64, ms.n_live_arcs());
        assert!(text.contains("SCALARS morse_index int 1"));
        assert!(text.contains("SCALARS arc_persistence float 1"));
    }

    #[test]
    fn vtk_line_indices_in_range() {
        let ms = sample();
        let mut out = Vec::new();
        write_vtk_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let points_decl: usize = text
            .lines()
            .find(|l| l.starts_with("POINTS"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        let lines_pos = text.lines().position(|l| l.starts_with("LINES")).unwrap();
        let lines_decl: usize = text
            .lines()
            .nth(lines_pos)
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        for l in text.lines().skip(lines_pos + 1).take(lines_decl) {
            let mut it = l.split_whitespace();
            let n: usize = it.next().unwrap().parse().unwrap();
            let ids: Vec<usize> = it.map(|v| v.parse().unwrap()).collect();
            assert_eq!(ids.len(), n);
            assert!(ids.iter().all(|&i| i < points_decl));
        }
    }

    #[test]
    fn csv_rows_match_live_nodes() {
        let ms = sample();
        let mut out = Vec::new();
        write_nodes_csv_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let rows = text.lines().count() - 1; // header
        assert_eq!(rows as u64, ms.n_live_nodes());
        // header intact and rows have 7 fields
        assert_eq!(text.lines().next().unwrap(), "node,index,value,x,y,z,boundary");
        for row in text.lines().skip(1) {
            assert_eq!(row.split(',').count(), 7);
        }
    }
}
