//! Visualization and analysis exports of the 1-skeleton.
//!
//! The paper's pipeline ends in interactive visualization (Fig 1); this
//! module writes the living complex in two portable forms:
//!
//! * **legacy VTK polydata** (`.vtk`, ASCII) — nodes as points, arcs as
//!   polylines through their V-path cell centres, with point data
//!   (Morse index, scalar value) and cell data (persistence of the arc's
//!   endpoints) so standard viewers (ParaView, VisIt) colour features
//!   directly;
//! * **CSV node table** — one row per living node for notebook analysis.
//!
//! Refined coordinates map to physical space as `coordinate / 2` (cell
//! centres land on half-integers).

use crate::skeleton::MsComplex;
use std::io::{self, Write};
use std::path::Path;

/// Error reading one of this module's text formats back in: what went
/// wrong and the 1-based line it went wrong on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// What was expected / what was found.
    pub context: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.context)
    }
}

impl std::error::Error for ParseError {}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let tok = tok.ok_or_else(|| ParseError {
        line,
        context: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| ParseError {
        line,
        context: format!("malformed {what}: {tok:?}"),
    })
}

/// One row of the [`write_nodes_csv`] table, read back in.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvNode {
    pub node: u64,
    pub index: u8,
    pub value: f32,
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub boundary: bool,
}

/// Parse a node table produced by [`write_nodes_csv`]. Malformed rows
/// are reported as a typed [`ParseError`] carrying the line number, not
/// a panic.
pub fn parse_nodes_csv(text: &str) -> Result<Vec<CsvNode>, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "node,index,value,x,y,z,boundary")) => {}
        Some((_, h)) => {
            return Err(ParseError {
                line: 1,
                context: format!("unexpected CSV header: {h:?}"),
            })
        }
        None => {
            return Err(ParseError {
                line: 1,
                context: "empty input (missing CSV header)".into(),
            })
        }
    }
    let mut rows = Vec::new();
    for (i, row) in lines {
        let line = i + 1;
        if row.trim().is_empty() {
            continue;
        }
        let mut f = row.split(',');
        let node = parse_field(f.next(), line, "node id")?;
        let index = parse_field(f.next(), line, "morse index")?;
        let value = parse_field(f.next(), line, "scalar value")?;
        let x = parse_field(f.next(), line, "x coordinate")?;
        let y = parse_field(f.next(), line, "y coordinate")?;
        let z = parse_field(f.next(), line, "z coordinate")?;
        let boundary: u8 = parse_field(f.next(), line, "boundary flag")?;
        if let Some(extra) = f.next() {
            return Err(ParseError {
                line,
                context: format!("trailing field {extra:?} (expected 7 columns)"),
            });
        }
        rows.push(CsvNode {
            node,
            index,
            value,
            x,
            y,
            z,
            boundary: boundary != 0,
        });
    }
    Ok(rows)
}

/// Structural summary of a legacy-VTK polydata file written by
/// [`write_vtk`]: point count and the LINES connectivity, validated
/// against the declared counts.
#[derive(Debug, Clone, PartialEq)]
pub struct VtkSkeleton {
    pub n_points: usize,
    /// Per-polyline point indices, each `< n_points`.
    pub lines: Vec<Vec<usize>>,
}

/// Parse the POINTS/LINES structure of a [`write_vtk`] file. Returns a
/// typed [`ParseError`] with the offending line number on malformed or
/// truncated input instead of panicking.
pub fn parse_vtk_skeleton(text: &str) -> Result<VtkSkeleton, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let find = |kw: &str| -> Result<usize, ParseError> {
        lines
            .iter()
            .position(|l| l.starts_with(kw))
            .ok_or_else(|| ParseError {
                line: lines.len().max(1),
                context: format!("missing {kw} section"),
            })
    };
    let header_count = |pos: usize, kw: &str| -> Result<usize, ParseError> {
        parse_field(
            lines[pos].split_whitespace().nth(1),
            pos + 1,
            &format!("{kw} count"),
        )
    };

    let p = find("POINTS")?;
    let n_points = header_count(p, "POINTS")?;
    for (off, l) in lines.iter().skip(p + 1).take(n_points).enumerate() {
        let line = p + 2 + off;
        let mut it = l.split_whitespace();
        for axis in ["x", "y", "z"] {
            let _: f32 = parse_field(it.next(), line, &format!("point {axis}"))?;
        }
    }
    if lines.len() < p + 1 + n_points {
        return Err(ParseError {
            line: lines.len(),
            context: format!("truncated POINTS section (expected {n_points} rows)"),
        });
    }

    let lp = find("LINES")?;
    let n_lines = header_count(lp, "LINES")?;
    let mut polylines = Vec::with_capacity(n_lines);
    for off in 0..n_lines {
        let line = lp + 2 + off;
        let l = lines.get(lp + 1 + off).ok_or_else(|| ParseError {
            line: lines.len(),
            context: format!("truncated LINES section (expected {n_lines} rows)"),
        })?;
        let mut it = l.split_whitespace();
        let n: usize = parse_field(it.next(), line, "polyline length")?;
        let ids = it
            .map(|v| parse_field(Some(v), line, "point index"))
            .collect::<Result<Vec<usize>, _>>()?;
        if ids.len() != n {
            return Err(ParseError {
                line,
                context: format!("polyline declares {n} points but has {}", ids.len()),
            });
        }
        if let Some(&bad) = ids.iter().find(|&&i| i >= n_points) {
            return Err(ParseError {
                line,
                context: format!("point index {bad} out of range (POINTS {n_points})"),
            });
        }
        polylines.push(ids);
    }
    Ok(VtkSkeleton {
        n_points,
        lines: polylines,
    })
}

/// Write the living 1-skeleton as legacy ASCII VTK polydata.
pub fn write_vtk(ms: &MsComplex, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_vtk_to(ms, &mut w)
}

/// [`write_vtk`] into any writer (unit-testable).
pub fn write_vtk_to(ms: &MsComplex, w: &mut impl Write) -> io::Result<()> {
    let refined = ms.refined;
    // collect points: every distinct cell address used by nodes or arc
    // geometry becomes a point
    let mut addrs: Vec<u64> = ms
        .nodes
        .iter()
        .filter(|n| n.alive)
        .map(|n| n.addr)
        .collect();
    let live_arcs: Vec<usize> = ms
        .arcs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.alive)
        .map(|(i, _)| i)
        .collect();
    let arc_paths: Vec<Vec<u64>> = live_arcs
        .iter()
        .map(|&i| ms.flatten_geom(ms.arcs[i].geom))
        .collect();
    for p in &arc_paths {
        addrs.extend_from_slice(p);
    }
    addrs.sort_unstable();
    addrs.dedup();
    let point_of = |addr: u64| addrs.binary_search(&addr).unwrap();

    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "morse-smale 1-skeleton")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {} float", addrs.len())?;
    for &a in &addrs {
        let (i, j, k) = refined.coord(a);
        writeln!(
            w,
            "{} {} {}",
            i as f32 / 2.0,
            j as f32 / 2.0,
            k as f32 / 2.0
        )?;
    }
    // vertices for the critical points
    let live_nodes: Vec<usize> = ms
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.alive)
        .map(|(i, _)| i)
        .collect();
    writeln!(w, "VERTICES {} {}", live_nodes.len(), 2 * live_nodes.len())?;
    for &i in &live_nodes {
        writeln!(w, "1 {}", point_of(ms.nodes[i].addr))?;
    }
    // polylines for the arcs
    let total: usize = arc_paths.iter().map(|p| p.len() + 1).sum();
    writeln!(w, "LINES {} {}", arc_paths.len(), total)?;
    for p in &arc_paths {
        write!(w, "{}", p.len())?;
        for &a in p {
            write!(w, " {}", point_of(a))?;
        }
        writeln!(w)?;
    }
    // point data: Morse index (-1 for plain path points) and value
    writeln!(w, "POINT_DATA {}", addrs.len())?;
    writeln!(w, "SCALARS morse_index int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    let mut index_of = vec![-1i32; addrs.len()];
    for &i in &live_nodes {
        index_of[point_of(ms.nodes[i].addr)] = ms.nodes[i].index as i32;
    }
    for v in &index_of {
        writeln!(w, "{v}")?;
    }
    // cell data: persistence of each arc (|f(upper) − f(lower)|); the
    // node VERTICES cells come first and carry 0
    writeln!(w, "CELL_DATA {}", live_nodes.len() + arc_paths.len())?;
    writeln!(w, "SCALARS arc_persistence float 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for _ in &live_nodes {
        writeln!(w, "0")?;
    }
    for &i in &live_arcs {
        let a = &ms.arcs[i];
        let p = (ms.nodes[a.upper as usize].value - ms.nodes[a.lower as usize].value).abs();
        writeln!(w, "{p}")?;
    }
    w.flush()
}

/// Which slice of the Morse-Smale segmentation a [`LabeledVolume`]
/// materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// Descending manifolds: one region per minimum, labels on vertices.
    Descending,
    /// Ascending manifolds: one region per maximum, labels on voxels.
    Ascending,
    /// Full MS cells (basin ∩ mountain intersections), labels on voxels.
    Combined,
}

impl SegKind {
    pub fn key(self) -> &'static str {
        match self {
            SegKind::Descending => "descending",
            SegKind::Ascending => "ascending",
            SegKind::Combined => "combined",
        }
    }
}

/// A block's segmentation flattened to one label per grid point, ready
/// for export: vertex-grid labels for [`SegKind::Descending`],
/// voxel-grid labels for [`SegKind::Ascending`] and
/// [`SegKind::Combined`]. Labels are `i64` with `-1` for the drain
/// (ascending paths that exit the domain).
///
/// Built from the plain label slices of `msp-segment`'s block
/// segmentation — this crate stays independent of that one, so the
/// constructors take slices, not the struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledVolume {
    pub kind: SegKind,
    /// Grid dims the labels live on (x-fastest order).
    pub dims: [u32; 3],
    /// Block origin in vertex coordinates of the full dataset.
    pub origin: [u32; 3],
    pub labels: Vec<i64>,
}

/// Sentinel label in exported volumes for the drain region.
pub const DRAIN_REGION: i64 = -1;
const DRAIN_LABEL_U32: u32 = u32::MAX;

impl LabeledVolume {
    /// Descending (minimum-basin) regions: `min_label` has one entry per
    /// vertex of a `vdims` grid.
    pub fn descending(vdims: [u32; 3], origin: [u32; 3], min_label: &[u32]) -> LabeledVolume {
        assert_eq!(min_label.len(), grid_len(vdims));
        LabeledVolume {
            kind: SegKind::Descending,
            dims: vdims,
            origin,
            labels: min_label.iter().map(|&l| widen(l)).collect(),
        }
    }

    /// Ascending (maximum-mountain) regions: `max_label` has one entry
    /// per voxel of a `vdims` vertex grid.
    pub fn ascending(vdims: [u32; 3], origin: [u32; 3], max_label: &[u32]) -> LabeledVolume {
        let cdims = voxel_dims(vdims);
        assert_eq!(max_label.len(), grid_len(cdims));
        LabeledVolume {
            kind: SegKind::Ascending,
            dims: cdims,
            origin,
            labels: max_label.iter().map(|&l| widen(l)).collect(),
        }
    }

    /// Combined MS cells at voxel resolution: each voxel is keyed by the
    /// pair (its ascending region, the descending region of its base
    /// corner vertex), enumerated as `ascending * n_mins + descending`.
    /// A drained voxel keys to [`DRAIN_REGION`].
    pub fn combined(
        vdims: [u32; 3],
        origin: [u32; 3],
        min_label: &[u32],
        max_label: &[u32],
        n_mins: u32,
    ) -> LabeledVolume {
        assert_eq!(min_label.len(), grid_len(vdims));
        let cdims = voxel_dims(vdims);
        assert_eq!(max_label.len(), grid_len(cdims));
        let (nx, ny) = (vdims[0] as usize, vdims[1] as usize);
        let (cx, cy, cz) = (cdims[0] as usize, cdims[1] as usize, cdims[2] as usize);
        let mut labels = Vec::with_capacity(max_label.len());
        for z in 0..cz {
            for y in 0..cy {
                for x in 0..cx {
                    let m = max_label[x + cx * (y + cy * z)];
                    let d = min_label[x + nx * (y + ny * z)];
                    labels.push(if m == DRAIN_LABEL_U32 || d == DRAIN_LABEL_U32 {
                        DRAIN_REGION
                    } else {
                        m as i64 * n_mins as i64 + d as i64
                    });
                }
            }
        }
        LabeledVolume {
            kind: SegKind::Combined,
            dims: cdims,
            origin,
            labels,
        }
    }
}

fn grid_len(d: [u32; 3]) -> usize {
    d.iter().map(|&v| v as usize).product()
}

fn voxel_dims(vdims: [u32; 3]) -> [u32; 3] {
    [
        vdims[0].saturating_sub(1),
        vdims[1].saturating_sub(1),
        vdims[2].saturating_sub(1),
    ]
}

fn widen(l: u32) -> i64 {
    if l == DRAIN_LABEL_U32 {
        DRAIN_REGION
    } else {
        l as i64
    }
}

/// Write a labeled volume as legacy ASCII VTK structured points (the
/// natural dataset type for a dense label grid; viewers threshold or
/// colour by the `region` array directly).
pub fn write_labels_vtk(v: &LabeledVolume, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_labels_vtk_to(v, &mut w)
}

/// [`write_labels_vtk`] into any writer (unit-testable).
pub fn write_labels_vtk_to(v: &LabeledVolume, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "morse-smale segmentation ({})", v.kind.key())?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {} {} {}", v.dims[0], v.dims[1], v.dims[2])?;
    writeln!(w, "ORIGIN {} {} {}", v.origin[0], v.origin[1], v.origin[2])?;
    writeln!(w, "SPACING 1 1 1")?;
    writeln!(w, "POINT_DATA {}", v.labels.len())?;
    writeln!(w, "SCALARS region int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for l in &v.labels {
        writeln!(w, "{l}")?;
    }
    w.flush()
}

/// Parse a [`write_labels_vtk`] file back into a [`LabeledVolume`].
/// Validates that the declared DIMENSIONS match the POINT_DATA count and
/// the number of emitted values; malformed input is a typed
/// [`ParseError`], not a panic.
pub fn parse_labels_vtk(text: &str) -> Result<LabeledVolume, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let find = |kw: &str| -> Result<usize, ParseError> {
        lines
            .iter()
            .position(|l| l.starts_with(kw))
            .ok_or_else(|| ParseError {
                line: lines.len().max(1),
                context: format!("missing {kw} section"),
            })
    };
    let kind = lines
        .get(1)
        .and_then(|t| {
            [SegKind::Descending, SegKind::Ascending, SegKind::Combined]
                .into_iter()
                .find(|k| t.contains(k.key()))
        })
        .ok_or_else(|| ParseError {
            line: 2,
            context: "title names no segmentation kind".into(),
        })?;
    let triple = |pos: usize, kw: &str| -> Result<[u32; 3], ParseError> {
        let mut it = lines[pos].split_whitespace().skip(1);
        let mut out = [0u32; 3];
        for (i, axis) in ["x", "y", "z"].iter().enumerate() {
            out[i] = parse_field(it.next(), pos + 1, &format!("{kw} {axis}"))?;
        }
        Ok(out)
    };
    let dp = find("DIMENSIONS")?;
    let dims = triple(dp, "DIMENSIONS")?;
    let op = find("ORIGIN")?;
    let origin = triple(op, "ORIGIN")?;
    let pp = find("POINT_DATA")?;
    let n: usize = parse_field(
        lines[pp].split_whitespace().nth(1),
        pp + 1,
        "POINT_DATA count",
    )?;
    if n != grid_len(dims) {
        return Err(ParseError {
            line: pp + 1,
            context: format!(
                "POINT_DATA {n} disagrees with DIMENSIONS {}x{}x{}",
                dims[0], dims[1], dims[2]
            ),
        });
    }
    let lp = find("LOOKUP_TABLE")?;
    let mut labels = Vec::with_capacity(n);
    for off in 0..n {
        let line = lp + 2 + off;
        let l = lines.get(lp + 1 + off).ok_or_else(|| ParseError {
            line: lines.len(),
            context: format!("truncated data section (expected {n} values)"),
        })?;
        labels.push(parse_field(Some(l.trim()), line, "region label")?);
    }
    Ok(LabeledVolume {
        kind,
        dims,
        origin,
        labels,
    })
}

/// Write a labeled volume as a CSV table: `x,y,z,region` with
/// coordinates in the full dataset's vertex grid.
pub fn write_labels_csv(v: &LabeledVolume, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_labels_csv_to(v, &mut w)
}

/// [`write_labels_csv`] into any writer.
pub fn write_labels_csv_to(v: &LabeledVolume, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "x,y,z,region")?;
    let (nx, ny, nz) = (v.dims[0], v.dims[1], v.dims[2]);
    let mut i = 0;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                writeln!(
                    w,
                    "{},{},{},{}",
                    v.origin[0] + x,
                    v.origin[1] + y,
                    v.origin[2] + z,
                    v.labels[i]
                )?;
                i += 1;
            }
        }
    }
    w.flush()
}

/// Parse a [`write_labels_csv`] table into `(x, y, z, region)` rows.
pub fn parse_labels_csv(text: &str) -> Result<Vec<(u32, u32, u32, i64)>, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "x,y,z,region")) => {}
        Some((_, h)) => {
            return Err(ParseError {
                line: 1,
                context: format!("unexpected CSV header: {h:?}"),
            })
        }
        None => {
            return Err(ParseError {
                line: 1,
                context: "empty input (missing CSV header)".into(),
            })
        }
    }
    let mut rows = Vec::new();
    for (i, row) in lines {
        let line = i + 1;
        if row.trim().is_empty() {
            continue;
        }
        let mut f = row.split(',');
        let x = parse_field(f.next(), line, "x coordinate")?;
        let y = parse_field(f.next(), line, "y coordinate")?;
        let z = parse_field(f.next(), line, "z coordinate")?;
        let region = parse_field(f.next(), line, "region label")?;
        if let Some(extra) = f.next() {
            return Err(ParseError {
                line,
                context: format!("trailing field {extra:?} (expected 4 columns)"),
            });
        }
        rows.push((x, y, z, region));
    }
    Ok(rows)
}

/// Write the living nodes as a CSV table:
/// `node,index,value,x,y,z,boundary`.
pub fn write_nodes_csv(ms: &MsComplex, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_nodes_csv_to(ms, &mut w)
}

/// [`write_nodes_csv`] into any writer.
pub fn write_nodes_csv_to(ms: &MsComplex, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "node,index,value,x,y,z,boundary")?;
    for (i, n) in ms.nodes.iter().enumerate().filter(|(_, n)| n.alive) {
        let (x, y, z) = ms.refined.coord(n.addr);
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            i,
            n.index,
            n.value,
            x as f32 / 2.0,
            y as f32 / 2.0,
            z as f32 / 2.0,
            n.boundary as u8
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use msp_grid::decomp::Decomposition;
    use msp_grid::Dims;
    use msp_morse::TraceLimits;

    fn sample() -> MsComplex {
        let dims = Dims::new(7, 7, 7);
        let f = msp_synth::white_noise(dims, 5);
        let d = Decomposition::bisect(dims, 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default()).0
    }

    #[test]
    fn vtk_structure_is_well_formed() {
        let ms = sample();
        let mut out = Vec::new();
        write_vtk_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        // declared counts match emitted rows (the parser validates both)
        let sk = parse_vtk_skeleton(&text).unwrap();
        assert!(sk.n_points > 0);
        assert_eq!(sk.lines.len() as u64, ms.n_live_arcs());
        assert!(text.contains("SCALARS morse_index int 1"));
        assert!(text.contains("SCALARS arc_persistence float 1"));
    }

    #[test]
    fn vtk_round_trips_through_the_typed_parser() {
        let ms = sample();
        let mut out = Vec::new();
        write_vtk_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let sk = parse_vtk_skeleton(&text).unwrap();
        assert_eq!(sk.lines.len() as u64, ms.n_live_arcs());
        // every polyline index validated < n_points by the parser
        assert!(sk.n_points > 0);
    }

    #[test]
    fn csv_rows_match_live_nodes() {
        let ms = sample();
        let mut out = Vec::new();
        write_nodes_csv_to(&ms, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let rows = parse_nodes_csv(&text).unwrap();
        assert_eq!(rows.len() as u64, ms.n_live_nodes());
        for r in &rows {
            assert!(r.index <= 3);
            assert!(r.value.is_finite());
        }
    }

    #[test]
    fn malformed_csv_reports_line_numbers_not_panics() {
        // bad header
        let e = parse_nodes_csv("id,value\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.context.contains("header"), "{e}");
        // empty input
        let e = parse_nodes_csv("").unwrap_err();
        assert_eq!(e.line, 1);
        // non-numeric field on row 3 (line 3 of the file)
        let text = "node,index,value,x,y,z,boundary\n\
                    0,0,1.5,0.5,0.5,0.5,0\n\
                    1,oops,2.5,1.0,1.0,1.0,1\n";
        let e = parse_nodes_csv(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.context.contains("morse index"), "{e}");
        assert!(e.to_string().starts_with("line 3:"), "{e}");
        // short row
        let e = parse_nodes_csv("node,index,value,x,y,z,boundary\n5,1,2.0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.context.contains("missing"), "{e}");
        // too many fields
        let e =
            parse_nodes_csv("node,index,value,x,y,z,boundary\n5,1,2.0,0,0,0,1,9\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.context.contains("trailing"), "{e}");
    }

    fn sample_volume() -> LabeledVolume {
        // 3x2x2 vertex grid -> 2x1x1 voxels
        let min_label = vec![0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 1, 1];
        let max_label = vec![0, u32::MAX];
        LabeledVolume::combined([3, 2, 2], [4, 0, 0], &min_label, &max_label, 2)
    }

    #[test]
    fn labeled_volume_kinds_have_expected_shapes() {
        let min_label = vec![0u32; 12];
        let max_label = vec![0u32; 2];
        let d = LabeledVolume::descending([3, 2, 2], [0, 0, 0], &min_label);
        assert_eq!(d.dims, [3, 2, 2]);
        assert_eq!(d.labels.len(), 12);
        let a = LabeledVolume::ascending([3, 2, 2], [0, 0, 0], &max_label);
        assert_eq!(a.dims, [2, 1, 1]);
        assert_eq!(a.labels.len(), 2);
        let c = sample_volume();
        assert_eq!(c.dims, [2, 1, 1]);
        // voxel 0: max region 0, base-corner min region 0 -> 0*2+0
        // voxel 1: drained -> -1
        assert_eq!(c.labels, vec![0, DRAIN_REGION]);
    }

    #[test]
    fn labels_vtk_round_trips() {
        let v = sample_volume();
        let mut out = Vec::new();
        write_labels_vtk_to(&v, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("DATASET STRUCTURED_POINTS"));
        assert!(text.contains("(combined)"));
        assert_eq!(parse_labels_vtk(&text).unwrap(), v);
    }

    #[test]
    fn labels_csv_round_trips() {
        let v = sample_volume();
        let mut out = Vec::new();
        write_labels_csv_to(&v, &mut out).unwrap();
        let rows = parse_labels_csv(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(rows.len(), v.labels.len());
        // origin offsets applied, x-fastest order preserved
        assert_eq!(rows[0], (4, 0, 0, 0));
        assert_eq!(rows[1], (5, 0, 0, DRAIN_REGION));
    }

    #[test]
    fn malformed_labels_exports_report_lines_not_panics() {
        let e = parse_labels_vtk("# vtk\nno kind here\n").unwrap_err();
        assert_eq!(e.line, 2);
        let v = sample_volume();
        let mut out = Vec::new();
        write_labels_vtk_to(&v, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // count mismatch
        let bad = text.replace("DIMENSIONS 2 1 1", "DIMENSIONS 3 1 1");
        assert!(parse_labels_vtk(&bad)
            .unwrap_err()
            .context
            .contains("disagrees"));
        // truncated values
        let mut cut = text.trim_end().lines().collect::<Vec<_>>();
        cut.pop();
        let e = parse_labels_vtk(&cut.join("\n")).unwrap_err();
        assert!(e.context.contains("truncated"), "{e}");
        // csv errors
        let e = parse_labels_csv("a,b\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_labels_csv("x,y,z,region\n1,2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_labels_csv("x,y,z,region\n1,2,3,4,5\n").unwrap_err();
        assert!(e.context.contains("trailing"), "{e}");
    }

    #[test]
    fn malformed_vtk_reports_line_numbers_not_panics() {
        // missing sections
        let e = parse_vtk_skeleton("# vtk DataFile Version 3.0\n").unwrap_err();
        assert!(e.context.contains("POINTS"), "{e}");
        // non-numeric coordinate on the first point row
        let text = "DATASET POLYDATA\nPOINTS 1 float\nfoo 0 0\nLINES 0 0\n";
        let e = parse_vtk_skeleton(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.context.contains("point x"), "{e}");
        // polyline referencing an out-of-range point
        let text = "POINTS 2 float\n0 0 0\n1 0 0\nLINES 1 3\n2 0 7\n";
        let e = parse_vtk_skeleton(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.context.contains("out of range"), "{e}");
        // declared length disagrees with the row
        let text = "POINTS 2 float\n0 0 0\n1 0 0\nLINES 1 3\n3 0 1\n";
        let e = parse_vtk_skeleton(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.context.contains("declares"), "{e}");
        // truncated LINES section
        let text = "POINTS 1 float\n0 0 0\nLINES 2 6\n1 0\n";
        let e = parse_vtk_skeleton(text).unwrap_err();
        assert!(e.context.contains("truncated"), "{e}");
    }
}
