//! Building a block-local MS complex from a scalar block (paper §IV-C/D):
//! assign the discrete gradient, add critical cells as nodes, trace
//! V-paths downwards and add one arc per terminating path.

use crate::skeleton::MsComplex;
use msp_grid::decomp::Decomposition;
use msp_grid::field::BlockField;
use msp_morse::gradient::GradientField;
use msp_morse::{active_kernel, assign_gradient, trace_all_arcs_kernel, TraceLimits, TraceStats};

/// Counters from one block build.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    pub cells_paired: u64,
    pub critical_cells: u64,
    pub boundary_nodes: u64,
    pub arcs: u64,
    pub geometry_cells: u64,
    pub truncated_nodes: u64,
}

/// Compute the gradient and MS complex of one block.
pub fn build_block_complex(
    field: &BlockField,
    decomp: &Decomposition,
    limits: TraceLimits,
) -> (MsComplex, BuildStats) {
    let grad = assign_gradient(field, decomp);
    let (ms, stats) = complex_from_gradient(field, decomp, &grad, limits);
    (ms, stats)
}

/// Build the complex from an already-computed gradient (shared by the
/// production path and the greedy-ablation benches). Serial tracing;
/// see [`complex_from_gradient_mt`] for the threaded variant.
pub fn complex_from_gradient(
    field: &BlockField,
    decomp: &Decomposition,
    grad: &GradientField,
    limits: TraceLimits,
) -> (MsComplex, BuildStats) {
    complex_from_gradient_mt(field, decomp, grad, limits, 1)
}

/// [`complex_from_gradient`] with V-path tracing fanned out over
/// `threads` (deterministic: the flat tracer chunks the critical list
/// contiguously and merges per-chunk arc stores in order, so the built
/// complex is identical for every thread count).
pub fn complex_from_gradient_mt(
    field: &BlockField,
    decomp: &Decomposition,
    grad: &GradientField,
    limits: TraceLimits,
    threads: usize,
) -> (MsComplex, BuildStats) {
    let refined = field.domain().refined();
    let mut ms = MsComplex::new(refined, vec![field.block().id]);
    let mut stats = BuildStats {
        cells_paired: grad.n_paired_cells(),
        ..BuildStats::default()
    };

    for c in grad.critical_cells() {
        let boundary = decomp.owners(c).is_shared();
        ms.add_node(
            c.address(&refined),
            c.cell_dim(),
            field.cell_value(c),
            boundary,
        );
        stats.critical_cells += 1;
        if boundary {
            stats.boundary_nodes += 1;
        }
    }

    let (arcs, tstats): (_, TraceStats) =
        trace_all_arcs_kernel(grad, limits, threads, active_kernel());
    stats.truncated_nodes = tstats.truncated_nodes;
    let mut path_addrs = Vec::new();
    for arc in arcs.iter() {
        path_addrs.clear();
        path_addrs.extend(arc.geom.iter().map(|c| c.address(&refined)));
        let g = ms.add_leaf_geom(&path_addrs);
        let u = ms
            .node_at(arc.upper.address(&refined))
            .expect("upper critical cell has a node");
        let l = ms
            .node_at(arc.lower.address(&refined))
            .expect("lower critical cell has a node");
        ms.add_arc(u, l, g);
        stats.arcs += 1;
        stats.geometry_cells += path_addrs.len() as u64;
    }
    (ms, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::{Dims, ScalarField};

    fn serial_complex(f: &ScalarField) -> (MsComplex, BuildStats) {
        let d = Decomposition::bisect(f.dims(), 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default())
    }

    #[test]
    fn ramp_gives_single_node() {
        let f = msp_synth::ramp(Dims::new(5, 5, 5));
        let (ms, stats) = serial_complex(&f);
        assert_eq!(ms.node_census(), [1, 0, 0, 0]);
        assert_eq!(stats.arcs, 0);
        assert_eq!(stats.boundary_nodes, 0, "single block has no shared faces");
        ms.check_integrity().unwrap();
    }

    #[test]
    fn noise_complex_is_consistent() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 19);
        let (ms, stats) = serial_complex(&f);
        assert!(stats.critical_cells > 4);
        assert!(stats.arcs > 0);
        assert!(stats.cells_paired > 0);
        assert_eq!(stats.cells_paired % 2, 0, "pairs cover cells two at a time");
        ms.check_integrity().unwrap();
        // every saddle must have arcs: a 1-saddle has exactly 2 descending
        // paths (possibly to the same minimum) unless truncated
        for (i, n) in ms.nodes.iter().enumerate() {
            if n.index == 1 {
                let down = ms.arcs_below(i as u32).count();
                assert_eq!(down, 2, "1-saddle must have 2 descending arcs");
            }
        }
    }

    #[test]
    fn threaded_trace_builds_identical_complex() {
        let dims = Dims::new(9, 8, 7);
        let f = msp_synth::white_noise(dims, 77);
        let d = Decomposition::bisect(dims, 2);
        for b in d.blocks() {
            let bf = f.extract_block(b);
            let g = assign_gradient(&bf, &d);
            let (serial, s1) = complex_from_gradient(&bf, &d, &g, TraceLimits::default());
            for threads in [2, 4, 8] {
                let (mt, s2) =
                    complex_from_gradient_mt(&bf, &d, &g, TraceLimits::default(), threads);
                assert_eq!(mt.nodes, serial.nodes, "threads {threads}");
                assert_eq!(mt.arcs, serial.arcs, "threads {threads}");
                assert_eq!(s2.arcs, s1.arcs);
                assert_eq!(s2.geometry_cells, s1.geometry_cells);
            }
        }
    }

    #[test]
    fn geometry_endpoints_match_nodes() {
        let f = msp_synth::white_noise(Dims::new(7, 7, 7), 3);
        let (ms, _) = serial_complex(&f);
        for a in &ms.arcs {
            let path = ms.flatten_geom(a.geom);
            assert_eq!(path[0], ms.nodes[a.upper as usize].addr);
            assert_eq!(*path.last().unwrap(), ms.nodes[a.lower as usize].addr);
        }
    }

    #[test]
    fn blocked_build_flags_boundary_nodes() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 5);
        let d = Decomposition::bisect(dims, 2);
        let mut boundary_total = 0;
        for b in d.blocks() {
            let (ms, stats) = build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
            ms.check_integrity().unwrap();
            boundary_total += stats.boundary_nodes;
            for n in &ms.nodes {
                let c = msp_grid::RCoord::from_address(n.addr, &ms.refined);
                assert_eq!(n.boundary, d.owners(c).is_shared());
            }
        }
        assert!(boundary_total > 0, "shared face must carry spurious nodes");
    }
}
