//! Flat-array storage of the MS complex 1-skeleton.
//!
//! Nodes and arcs are constant-sized records in `Vec`s ([11]); arc
//! geometry is a DAG of geometry records — a `Leaf` is a range into one
//! shared address buffer, and a `Cancel` record references the three
//! geometries a cancellation concatenates (paper §IV-E: "the geometry of
//! the new arcs is inherited from the deleted arcs, and a new geometry
//! object is created that references the geometry objects that were
//! merged"). Deletion is by tombstone (`alive` flags) so record ids stay
//! stable; [`MsComplex::compact`] rebuilds dense arrays before
//! communication.

use msp_grid::dims::RefinedDims;
use msp_grid::RCoord;
use std::collections::HashMap;

pub type NodeId = u32;
pub type ArcId = u32;
pub type GeomId = u32;

/// A node of the complex: a critical cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Global cell address on the refined grid of the full dataset.
    pub addr: u64,
    /// Morse index (0 = minimum … 3 = maximum) = dimension of the cell.
    pub index: u8,
    /// Function value of the critical cell.
    pub value: f32,
    /// True while the node lies on a boundary shared with a block outside
    /// this complex (such nodes may never be cancelled).
    pub boundary: bool,
    pub alive: bool,
    /// Persistence at which this node was cancelled (`f32::INFINITY`
    /// while alive) — lets stability studies rank features without
    /// replaying the hierarchy.
    pub cancel_persistence: f32,
}

/// An arc between critical cells of adjacent index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Node of index `d`.
    pub upper: NodeId,
    /// Node of index `d − 1`.
    pub lower: NodeId,
    pub geom: GeomId,
    pub alive: bool,
}

/// Geometry record: either a verbatim V-path or a cancellation splice.
#[derive(Debug, Clone, Copy)]
pub enum GeomRec {
    /// `addr_buf[offset .. offset + len]`, ordered from the upper node's
    /// cell to the lower node's cell.
    Leaf { offset: u64, len: u32 },
    /// Concatenation `first ++ reverse(mid) ++ last`, produced when a
    /// cancellation splices `x→l`, reversed `u→l`, and `u→y` into `x→y`.
    Cancel {
        first: GeomId,
        mid: GeomId,
        last: GeomId,
    },
}

/// A recorded cancellation (one level of the simplification hierarchy).
#[derive(Debug, Clone)]
pub struct Cancellation {
    pub persistence: f32,
    pub upper: NodeId,
    pub lower: NodeId,
    pub n_deleted_arcs: u32,
    pub n_created_arcs: u32,
}

/// The 1-skeleton of a Morse-Smale complex covering one or more blocks.
#[derive(Debug, Clone, Default)]
pub struct MsComplex {
    pub nodes: Vec<Node>,
    pub arcs: Vec<Arc>,
    pub(crate) geoms: Vec<GeomRec>,
    pub(crate) addr_buf: Vec<u64>,
    /// Arc ids incident to each node (may contain dead arcs; filtered on
    /// access).
    adj: Vec<Vec<ArcId>>,
    /// Global address → node id, for boundary matching during gluing.
    addr_index: HashMap<u64, NodeId>,
    /// Refined dims of the full dataset (address codec).
    pub refined: RefinedDims,
    /// Blocks merged into this complex, sorted.
    pub member_blocks: Vec<u32>,
    /// Cancellation log, in simplification order.
    pub hierarchy: Vec<Cancellation>,
}

impl MsComplex {
    pub fn new(refined: RefinedDims, member_blocks: Vec<u32>) -> Self {
        let mut member_blocks = member_blocks;
        member_blocks.sort_unstable();
        MsComplex {
            refined,
            member_blocks,
            ..Default::default()
        }
    }

    /// Add a node; panics if a node with the same address already exists.
    pub fn add_node(&mut self, addr: u64, index: u8, value: f32, boundary: bool) -> NodeId {
        debug_assert!(index <= 3);
        let id = self.nodes.len() as NodeId;
        let prev = self.addr_index.insert(addr, id);
        assert!(prev.is_none(), "duplicate node address {addr}");
        self.nodes.push(Node {
            addr,
            index,
            value,
            boundary,
            alive: true,
            cancel_persistence: f32::INFINITY,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an arc between `upper` (index d) and `lower` (index d−1).
    pub fn add_arc(&mut self, upper: NodeId, lower: NodeId, geom: GeomId) -> ArcId {
        debug_assert_eq!(
            self.nodes[upper as usize].index,
            self.nodes[lower as usize].index + 1,
            "arc endpoints must differ by one in index"
        );
        let id = self.arcs.len() as ArcId;
        self.arcs.push(Arc {
            upper,
            lower,
            geom,
            alive: true,
        });
        self.adj[upper as usize].push(id);
        self.adj[lower as usize].push(id);
        id
    }

    /// Store a verbatim V-path as a leaf geometry.
    pub fn add_leaf_geom(&mut self, path: &[u64]) -> GeomId {
        let id = self.geoms.len() as GeomId;
        self.geoms.push(GeomRec::Leaf {
            offset: self.addr_buf.len() as u64,
            len: path.len() as u32,
        });
        self.addr_buf.extend_from_slice(path);
        id
    }

    /// Store a cancellation-splice geometry.
    pub fn add_cancel_geom(&mut self, first: GeomId, mid: GeomId, last: GeomId) -> GeomId {
        let id = self.geoms.len() as GeomId;
        self.geoms.push(GeomRec::Cancel { first, mid, last });
        id
    }

    /// Resolve a geometry record to the flat list of cell addresses,
    /// ordered from the upper end to the lower end.
    pub fn flatten_geom(&self, g: GeomId) -> Vec<u64> {
        let mut out = Vec::new();
        self.flatten_into(g, false, &mut out);
        out
    }

    fn flatten_into(&self, g: GeomId, rev: bool, out: &mut Vec<u64>) {
        match self.geoms[g as usize] {
            GeomRec::Leaf { offset, len } => {
                let s = &self.addr_buf[offset as usize..offset as usize + len as usize];
                if rev {
                    out.extend(s.iter().rev());
                } else {
                    out.extend_from_slice(s);
                }
            }
            GeomRec::Cancel { first, mid, last } => {
                if rev {
                    self.flatten_into(last, true, out);
                    self.flatten_into(mid, false, out);
                    self.flatten_into(first, true, out);
                } else {
                    self.flatten_into(first, false, out);
                    self.flatten_into(mid, true, out);
                    self.flatten_into(last, false, out);
                }
            }
        }
    }

    /// Total number of cells a geometry resolves to (without
    /// materializing it).
    pub fn geom_len(&self, g: GeomId) -> u64 {
        match self.geoms[g as usize] {
            GeomRec::Leaf { len, .. } => len as u64,
            GeomRec::Cancel { first, mid, last } => {
                self.geom_len(first) + self.geom_len(mid) + self.geom_len(last)
            }
        }
    }

    /// True when `g` is a verbatim traced V-path (a [`GeomRec::Leaf`]),
    /// false for a cancellation splice. Spliced geometries contain a
    /// reversed middle segment and are *not* gradient V-paths, so
    /// path-validity checkers (the oracle crate) only apply to leaves.
    pub fn geom_is_leaf(&self, g: GeomId) -> bool {
        matches!(self.geoms[g as usize], GeomRec::Leaf { .. })
    }

    /// Node id at a global address, if present.
    pub fn node_at(&self, addr: u64) -> Option<NodeId> {
        self.addr_index.get(&addr).copied()
    }

    /// The refined coordinate of a node.
    pub fn node_coord(&self, n: NodeId) -> RCoord {
        RCoord::from_address(self.nodes[n as usize].addr, &self.refined)
    }

    /// Living arcs incident to a node.
    pub fn arcs_of(&self, n: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.adj[n as usize]
            .iter()
            .copied()
            .filter(move |&a| self.arcs[a as usize].alive)
    }

    /// Living arcs from upper node `u` (index d) down to any lower node.
    pub fn arcs_below(&self, u: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.arcs_of(u)
            .filter(move |&a| self.arcs[a as usize].upper == u)
    }

    /// Living arcs into lower node `l` from any upper node.
    pub fn arcs_above(&self, l: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.arcs_of(l)
            .filter(move |&a| self.arcs[a as usize].lower == l)
    }

    /// Number of living arcs connecting `u` and `l`.
    pub fn multiplicity(&self, u: NodeId, l: NodeId) -> usize {
        self.arcs_of(u)
            .filter(|&a| {
                let arc = &self.arcs[a as usize];
                arc.upper == u && arc.lower == l
            })
            .count()
    }

    /// Tombstone an arc.
    pub fn kill_arc(&mut self, a: ArcId) {
        self.arcs[a as usize].alive = false;
    }

    /// Drop dead arc ids from every adjacency list. Long simplification
    /// runs leave tombstones behind that make incidence scans linear in
    /// *historical* degree; pruning restores them to live degree.
    pub fn prune_dead_adjacency(&mut self) {
        let arcs = &self.arcs;
        for adj in &mut self.adj {
            adj.retain(|&a| arcs[a as usize].alive);
        }
    }

    /// Tombstone a node, recording the persistence it was cancelled at.
    pub fn kill_node(&mut self, n: NodeId, persistence: f32) {
        let node = &mut self.nodes[n as usize];
        node.alive = false;
        node.cancel_persistence = persistence;
        self.addr_index.remove(&node.addr);
    }

    /// Census of living nodes per Morse index.
    pub fn node_census(&self) -> [u64; 4] {
        let mut c = [0u64; 4];
        for n in &self.nodes {
            if n.alive {
                c[n.index as usize] += 1;
            }
        }
        c
    }

    pub fn n_live_nodes(&self) -> u64 {
        self.nodes.iter().filter(|n| n.alive).count() as u64
    }

    pub fn n_live_arcs(&self) -> u64 {
        self.arcs.iter().filter(|a| a.alive).count() as u64
    }

    /// Estimated resident heap footprint in bytes, from the container
    /// capacities (the serve layer's byte gauges and the future
    /// evict-by-bytes budget read this; exactness to the allocator is
    /// not required, stability across calls is).
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        let vecs = self.nodes.capacity() * size_of::<Node>()
            + self.arcs.capacity() * size_of::<Arc>()
            + self.geoms.capacity() * size_of::<GeomRec>()
            + self.addr_buf.capacity() * size_of::<u64>()
            + self.member_blocks.capacity() * size_of::<u32>()
            + self.hierarchy.capacity() * size_of::<Cancellation>();
        let adj: usize = self.adj.capacity() * size_of::<Vec<ArcId>>()
            + self
                .adj
                .iter()
                .map(|v| v.capacity() * size_of::<ArcId>())
                .sum::<usize>();
        // HashMap overhead ≈ 1/0.875 load factor plus one control byte
        // per slot; close enough for a gauge
        let index = self.addr_index.capacity() * (size_of::<(u64, NodeId)>() + 1);
        (size_of::<MsComplex>() + vecs + adj + index) as u64
    }

    /// Total number of path cells across all living arcs (geometry cost).
    pub fn live_geometry_cells(&self) -> u64 {
        self.arcs
            .iter()
            .filter(|a| a.alive)
            .map(|a| self.geom_len(a.geom))
            .sum()
    }

    /// Rebuild dense arrays: drop dead nodes/arcs, keep only geometry
    /// records reachable from living arcs (preserving the sharing DAG —
    /// the paper's geometry objects are stored by reference, §IV-E),
    /// rebuild adjacency and the address index, and clear the hierarchy
    /// (keeping only the coarsest level, as the paper does before
    /// communication, §IV-F1).
    pub fn compact(&mut self) {
        let mut out = MsComplex::new(self.refined, self.member_blocks.clone());
        let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive {
                let id = out.add_node(n.addr, n.index, n.value, n.boundary);
                node_map.insert(i as NodeId, id);
            }
        }
        let mut geom_map: HashMap<GeomId, GeomId> = HashMap::new();
        for a in self.arcs.iter().filter(|a| a.alive) {
            let g = self.copy_geom_into(a.geom, &mut out, &mut geom_map);
            out.add_arc(node_map[&a.upper], node_map[&a.lower], g);
        }
        *self = out;
    }

    /// Recursively copy the geometry DAG rooted at `g` into `out`,
    /// deduplicating shared records through `map`.
    pub fn copy_geom_into(
        &self,
        g: GeomId,
        out: &mut MsComplex,
        map: &mut HashMap<GeomId, GeomId>,
    ) -> GeomId {
        if let Some(&id) = map.get(&g) {
            return id;
        }
        let id = match self.geoms[g as usize] {
            GeomRec::Leaf { offset, len } => {
                let s = &self.addr_buf[offset as usize..offset as usize + len as usize];
                out.add_leaf_geom(s)
            }
            GeomRec::Cancel { first, mid, last } => {
                let f = self.copy_geom_into(first, out, map);
                let m = self.copy_geom_into(mid, out, map);
                let l = self.copy_geom_into(last, out, map);
                out.add_cancel_geom(f, m, l)
            }
        };
        map.insert(g, id);
        id
    }

    /// Number of geometry records reachable from living arcs, and the
    /// total leaf cells among them — the deduplicated storage cost of the
    /// geometric embedding.
    pub fn reachable_geometry(&self) -> (u64, u64) {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<GeomId> = self
            .arcs
            .iter()
            .filter(|a| a.alive)
            .map(|a| a.geom)
            .collect();
        let mut cells = 0u64;
        while let Some(g) = stack.pop() {
            if !seen.insert(g) {
                continue;
            }
            match self.geoms[g as usize] {
                GeomRec::Leaf { len, .. } => cells += len as u64,
                GeomRec::Cancel { first, mid, last } => {
                    stack.push(first);
                    stack.push(mid);
                    stack.push(last);
                }
            }
        }
        (seen.len() as u64, cells)
    }

    /// Recompute each living node's boundary flag against the current
    /// member-block set: a node stays boundary iff its address is shared
    /// with a block outside this complex (paper §IV-F3: "the boundary
    /// status of each node is updated according to the bounds of the
    /// merged blocks").
    pub fn reflag_boundaries(&mut self, decomp: &msp_grid::Decomposition) {
        let members: std::collections::HashSet<u32> = self.member_blocks.iter().copied().collect();
        let refined = self.refined;
        for n in self.nodes.iter_mut().filter(|n| n.alive) {
            let c = RCoord::from_address(n.addr, &refined);
            n.boundary = decomp
                .owners(c)
                .as_slice()
                .iter()
                .any(|b| !members.contains(b));
        }
    }

    /// Structural sanity check used by tests: adjacency covers arcs,
    /// indices differ by one, address index matches living nodes.
    pub fn check_integrity(&self) -> Result<(), String> {
        for (i, a) in self.arcs.iter().enumerate() {
            let (u, l) = (&self.nodes[a.upper as usize], &self.nodes[a.lower as usize]);
            if u.index != l.index + 1 {
                return Err(format!("arc {i} endpoint indices {} {}", u.index, l.index));
            }
            if a.alive && (!u.alive || !l.alive) {
                return Err(format!("arc {i} alive with dead endpoint"));
            }
            if a.alive {
                let ok = self.adj[a.upper as usize].contains(&(i as ArcId))
                    && self.adj[a.lower as usize].contains(&(i as ArcId));
                if !ok {
                    return Err(format!("arc {i} missing from adjacency"));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && self.addr_index.get(&n.addr) != Some(&(i as NodeId)) {
                return Err(format!("node {i} missing from address index"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::Dims;

    fn tiny() -> MsComplex {
        MsComplex::new(Dims::new(4, 4, 4).refined(), vec![0])
    }

    #[test]
    fn add_and_census() {
        let mut ms = tiny();
        let mn = ms.add_node(0, 0, 0.0, false);
        let sd = ms.add_node(1, 1, 1.0, false);
        let g = ms.add_leaf_geom(&[1, 0]);
        ms.add_arc(sd, mn, g);
        assert_eq!(ms.node_census(), [1, 1, 0, 0]);
        assert_eq!(ms.n_live_arcs(), 1);
        assert_eq!(ms.multiplicity(sd, mn), 1);
        ms.check_integrity().unwrap();
    }

    #[test]
    fn flatten_cancel_geometry() {
        let mut ms = tiny();
        let a = ms.add_leaf_geom(&[10, 11, 12]); // x -> l
        let t = ms.add_leaf_geom(&[20, 21, 12]); // u -> l
        let b = ms.add_leaf_geom(&[20, 31, 32]); // u -> y
        let spliced = ms.add_cancel_geom(a, t, b);
        // x..l, reversed u..l, u..y
        assert_eq!(
            ms.flatten_geom(spliced),
            vec![10, 11, 12, 12, 21, 20, 20, 31, 32]
        );
        assert_eq!(ms.geom_len(spliced), 9);
        // reversal of a spliced geometry
        let outer = ms.add_cancel_geom(spliced, a, t);
        let flat = ms.flatten_geom(outer);
        assert_eq!(flat.len(), 9 + 3 + 3);
    }

    #[test]
    fn kill_and_compact() {
        let mut ms = tiny();
        let n0 = ms.add_node(0, 0, 0.0, false);
        let n1 = ms.add_node(5, 1, 2.0, false);
        let n2 = ms.add_node(9, 1, 3.0, true);
        let g1 = ms.add_leaf_geom(&[5, 0]);
        let g2 = ms.add_leaf_geom(&[9, 0]);
        let a1 = ms.add_arc(n1, n0, g1);
        ms.add_arc(n2, n0, g2);
        ms.kill_arc(a1);
        ms.kill_node(n1, 2.0);
        assert_eq!(ms.n_live_nodes(), 2);
        assert!(ms.node_at(5).is_none(), "dead node leaves the index");
        ms.compact();
        assert_eq!(ms.nodes.len(), 2);
        assert_eq!(ms.arcs.len(), 1);
        assert_eq!(ms.flatten_geom(ms.arcs[0].geom), vec![9, 0]);
        ms.check_integrity().unwrap();
        assert_eq!(ms.nodes[ms.arcs[0].upper as usize].addr, 9);
    }

    #[test]
    #[should_panic]
    fn duplicate_address_rejected() {
        let mut ms = tiny();
        ms.add_node(3, 0, 0.0, false);
        ms.add_node(3, 1, 1.0, false);
    }

    #[test]
    fn multiplicity_counts_parallel_arcs() {
        let mut ms = tiny();
        let n0 = ms.add_node(0, 0, 0.0, false);
        let n1 = ms.add_node(5, 1, 2.0, false);
        let g1 = ms.add_leaf_geom(&[5, 4, 0]);
        let g2 = ms.add_leaf_geom(&[5, 6, 0]);
        ms.add_arc(n1, n0, g1);
        ms.add_arc(n1, n0, g2);
        assert_eq!(ms.multiplicity(n1, n0), 2);
        assert_eq!(ms.arcs_below(n1).count(), 2);
        assert_eq!(ms.arcs_above(n0).count(), 2);
    }
}
