//! Wire serialization of a compacted MS complex.
//!
//! Used both for inter-process merge messages (§IV-F2) and as the block
//! payload of the output file (§IV-G). Geometry is shipped flattened
//! (live arcs only; the hierarchy is dropped — "we remove from memory all
//! but the coarsest levels", §IV-F1). All addresses are **global**, so a
//! receiver can glue without further translation.

use crate::skeleton::{GeomRec, MsComplex};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use msp_grid::dims::RefinedDims;

/// Format magic + version. Version 2 ships the geometry DAG (records by
/// reference, each written once) instead of per-arc flattened paths.
const MAGIC: &[u8; 4] = b"MSC2";

/// Serialize a compacted complex (live nodes/arcs only) to bytes.
///
/// Panics if the complex still contains tombstones — call
/// [`MsComplex::compact`] first.
pub fn serialize(ms: &MsComplex) -> Bytes {
    assert!(
        ms.nodes.iter().all(|n| n.alive) && ms.arcs.iter().all(|a| a.alive),
        "serialize requires a compacted complex"
    );
    let mut buf = BytesMut::with_capacity(estimate_size(ms));
    buf.put_slice(MAGIC);
    buf.put_u64_le(ms.refined.rx);
    buf.put_u64_le(ms.refined.ry);
    buf.put_u64_le(ms.refined.rz);
    buf.put_u32_le(ms.member_blocks.len() as u32);
    for &b in &ms.member_blocks {
        buf.put_u32_le(b);
    }
    buf.put_u32_le(ms.nodes.len() as u32);
    for n in &ms.nodes {
        buf.put_u64_le(n.addr);
        buf.put_f32_le(n.value);
        buf.put_u8(n.index);
        buf.put_u8(n.boundary as u8);
    }
    // geometry DAG: records in creation order, children precede parents
    buf.put_u32_le(ms.geoms.len() as u32);
    for g in &ms.geoms {
        match *g {
            GeomRec::Leaf { offset, len } => {
                buf.put_u8(0);
                buf.put_u32_le(len);
                let s = &ms.addr_buf[offset as usize..offset as usize + len as usize];
                for &addr in s {
                    buf.put_u64_le(addr);
                }
            }
            GeomRec::Cancel { first, mid, last } => {
                buf.put_u8(1);
                buf.put_u32_le(first);
                buf.put_u32_le(mid);
                buf.put_u32_le(last);
            }
        }
    }
    buf.put_u32_le(ms.arcs.len() as u32);
    for a in &ms.arcs {
        buf.put_u32_le(a.upper);
        buf.put_u32_le(a.lower);
        buf.put_u32_le(a.geom);
    }
    buf.freeze()
}

/// Exact serialized size (used for preallocation and as the message
/// size in the communication-cost model).
pub fn estimate_size(ms: &MsComplex) -> usize {
    let mut geom_bytes = 0usize;
    for g in &ms.geoms {
        geom_bytes += match *g {
            GeomRec::Leaf { len, .. } => 1 + 4 + 8 * len as usize,
            GeomRec::Cancel { .. } => 1 + 12,
        };
    }
    4 + 24
        + 4
        + 4 * ms.member_blocks.len()
        + 4
        + 14 * ms.nodes.len()
        + 4
        + geom_bytes
        + 4
        + ms.arcs.len() * 12
}

/// Errors from [`deserialize`].
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    BadMagic,
    Truncated,
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not an MSC1 payload)"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Deserialize a complex serialized with [`serialize`].
pub fn deserialize(data: &[u8]) -> Result<MsComplex, WireError> {
    let mut buf = data;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    buf.advance(4);
    let need = |n: usize, buf: &&[u8]| -> Result<(), WireError> {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    need(24, &buf)?;
    let refined = RefinedDims {
        rx: buf.get_u64_le(),
        ry: buf.get_u64_le(),
        rz: buf.get_u64_le(),
    };
    need(4, &buf)?;
    let n_members = buf.get_u32_le() as usize;
    need(4 * n_members, &buf)?;
    let members: Vec<u32> = (0..n_members).map(|_| buf.get_u32_le()).collect();
    let mut ms = MsComplex::new(refined, members);
    need(4, &buf)?;
    let n_nodes = buf.get_u32_le() as usize;
    need(14 * n_nodes, &buf)?;
    for _ in 0..n_nodes {
        let addr = buf.get_u64_le();
        let value = buf.get_f32_le();
        let index = buf.get_u8();
        let boundary = buf.get_u8() != 0;
        if index > 3 {
            return Err(WireError::Corrupt("node index > 3"));
        }
        ms.add_node(addr, index, value, boundary);
    }
    need(4, &buf)?;
    let n_geoms = buf.get_u32_le() as usize;
    let mut path = Vec::new();
    for i in 0..n_geoms {
        need(1, &buf)?;
        match buf.get_u8() {
            0 => {
                need(4, &buf)?;
                let len = buf.get_u32_le() as usize;
                need(8 * len, &buf)?;
                path.clear();
                path.extend((0..len).map(|_| buf.get_u64_le()));
                ms.add_leaf_geom(&path);
            }
            1 => {
                need(12, &buf)?;
                let (f, m, l) = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
                // children must precede parents (DAG in creation order)
                if f as usize >= i || m as usize >= i || l as usize >= i {
                    return Err(WireError::Corrupt("geometry record forward reference"));
                }
                ms.add_cancel_geom(f, m, l);
            }
            _ => return Err(WireError::Corrupt("unknown geometry record kind")),
        }
    }
    need(4, &buf)?;
    let n_arcs = buf.get_u32_le() as usize;
    for _ in 0..n_arcs {
        need(12, &buf)?;
        let upper = buf.get_u32_le();
        let lower = buf.get_u32_le();
        let geom = buf.get_u32_le();
        if upper as usize >= n_nodes || lower as usize >= n_nodes {
            return Err(WireError::Corrupt("arc endpoint out of range"));
        }
        if geom as usize >= n_geoms {
            return Err(WireError::Corrupt("arc geometry out of range"));
        }
        ms.add_arc(upper, lower, geom);
    }
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use msp_grid::decomp::Decomposition;
    use msp_grid::Dims;
    use msp_morse::TraceLimits;

    fn sample() -> MsComplex {
        let dims = Dims::new(8, 8, 8);
        let f = msp_synth::white_noise(dims, 8);
        let d = Decomposition::bisect(dims, 2);
        let (mut ms, _) =
            build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default());
        ms.compact();
        ms
    }

    #[test]
    fn round_trip() {
        let ms = sample();
        let bytes = serialize(&ms);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(back.nodes.len(), ms.nodes.len());
        assert_eq!(back.arcs.len(), ms.arcs.len());
        assert_eq!(back.member_blocks, ms.member_blocks);
        assert_eq!(back.refined, ms.refined);
        for (a, b) in ms.nodes.iter().zip(&back.nodes) {
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.index, b.index);
            assert_eq!(a.value, b.value);
            assert_eq!(a.boundary, b.boundary);
        }
        for (a, b) in ms.arcs.iter().zip(&back.arcs) {
            assert_eq!((a.upper, a.lower), (b.upper, b.lower));
            assert_eq!(ms.flatten_geom(a.geom), back.flatten_geom(b.geom));
        }
        back.check_integrity().unwrap();
    }

    #[test]
    fn estimate_is_upper_bound_and_tight() {
        let ms = sample();
        let bytes = serialize(&ms);
        let est = estimate_size(&ms);
        assert!(bytes.len() <= est);
        assert!(est <= bytes.len() + 64, "estimate should be tight");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(deserialize(b"nope").unwrap_err(), WireError::BadMagic);
        let ms = sample();
        let bytes = serialize(&ms);
        // truncate mid-stream
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(
            deserialize(cut).unwrap_err(),
            WireError::Truncated | WireError::Corrupt(_)
        ));
    }
}
