//! Analysis queries over a living MS complex: the feature-extraction and
//! statistics layer the paper's Fig 1 pipeline motivates ("designing
//! interactive queries on the graph structure").

use crate::skeleton::{ArcId, MsComplex, NodeId};
use std::collections::HashMap;

/// Living nodes of a given Morse index with value at least `min_value`.
pub fn nodes_by_index_above(ms: &MsComplex, index: u8, min_value: f32) -> Vec<NodeId> {
    ms.nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.alive && n.index == index && n.value >= min_value)
        .map(|(i, _)| i as NodeId)
        .collect()
}

/// Living arcs whose endpoints have the given indices (`lower_index`,
/// `lower_index + 1`), e.g. `2` selects the 2-saddle→maximum filaments.
pub fn arcs_of_type(ms: &MsComplex, lower_index: u8) -> Vec<ArcId> {
    ms.arcs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.alive && ms.nodes[a.lower as usize].index == lower_index)
        .map(|(i, _)| i as ArcId)
        .collect()
}

/// The paper's Fig 1 / Fig 4 feature filter: the subgraph of
/// 2-saddle→maximum arcs whose *both* endpoint values exceed `threshold`
/// — the filament network of a ridge-like structure.
pub fn filament_subgraph(ms: &MsComplex, threshold: f32) -> Vec<ArcId> {
    ms.arcs
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.alive && {
                let u = &ms.nodes[a.upper as usize];
                let l = &ms.nodes[a.lower as usize];
                u.index == 3 && u.value >= threshold && l.value >= threshold
            }
        })
        .map(|(i, _)| i as ArcId)
        .collect()
}

/// Summary statistics of an arc subset interpreted as an embedded graph:
/// node count, edge count, connected components, total geometric length
/// (in path cells) and independent cycle count (first Betti number of the
/// subgraph).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    pub nodes: u64,
    pub edges: u64,
    pub components: u64,
    pub cycles: u64,
    pub total_length_cells: u64,
}

/// Compute [`GraphStats`] for a set of arcs (e.g. a filament subgraph).
pub fn graph_stats(ms: &MsComplex, arcs: &[ArcId]) -> GraphStats {
    let mut node_ids: Vec<NodeId> = arcs
        .iter()
        .flat_map(|&a| {
            let arc = &ms.arcs[a as usize];
            [arc.upper, arc.lower]
        })
        .collect();
    node_ids.sort_unstable();
    node_ids.dedup();
    let index: HashMap<NodeId, usize> = node_ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    // union-find over the subgraph
    let mut parent: Vec<usize> = (0..node_ids.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut total_len = 0u64;
    for &a in arcs {
        let arc = &ms.arcs[a as usize];
        let (u, l) = (index[&arc.upper], index[&arc.lower]);
        let (ru, rl) = (find(&mut parent, u), find(&mut parent, l));
        if ru != rl {
            parent[ru] = rl;
        }
        total_len += ms.geom_len(arc.geom);
    }
    let mut roots: Vec<usize> = (0..node_ids.len()).map(|i| find(&mut parent, i)).collect();
    roots.sort_unstable();
    roots.dedup();
    let components = roots.len() as u64;
    let nodes = node_ids.len() as u64;
    let edges = arcs.len() as u64;
    // beta_1 = E - V + C for a graph
    let cycles = edges + components - nodes;
    GraphStats {
        nodes,
        edges,
        components,
        cycles,
        total_length_cells: total_len,
    }
}

/// One point of the persistence curve: after cancelling everything with
/// persistence ≤ `p`, `live_nodes` remain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistencePoint {
    pub persistence: f32,
    pub live_nodes: u64,
}

/// The multi-resolution view the hierarchy encodes (paper §III-C): node
/// counts as a function of the simplification threshold, derived from the
/// cancellation log without recomputation.
pub fn persistence_curve(ms: &MsComplex) -> Vec<PersistencePoint> {
    let total = ms.n_live_nodes() + 2 * ms.hierarchy.len() as u64;
    let mut out = vec![PersistencePoint {
        persistence: 0.0,
        live_nodes: total,
    }];
    let mut live = total;
    for c in &ms.hierarchy {
        live -= 2;
        out.push(PersistencePoint {
            persistence: c.persistence,
            live_nodes: live,
        });
    }
    out
}

/// Number of living nodes whose feature persisted beyond `p` — alive
/// nodes plus nodes cancelled at persistence > `p`. This is the
/// blocking-stability metric of Fig 4.
pub fn nodes_surviving(ms: &MsComplex, p: f32) -> u64 {
    ms.nodes
        .iter()
        .filter(|n| n.alive || n.cancel_persistence > p)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_block_complex;
    use crate::simplify::{simplify, SimplifyParams};
    use msp_grid::decomp::Decomposition;
    use msp_grid::Dims;
    use msp_morse::TraceLimits;

    fn noise_complex(seed: u64) -> MsComplex {
        let dims = Dims::new(8, 8, 8);
        let f = msp_synth::white_noise(dims, seed);
        let d = Decomposition::bisect(dims, 1);
        build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default()).0
    }

    #[test]
    fn filters_select_correct_indices() {
        let ms = noise_complex(42);
        for &a in &arcs_of_type(&ms, 2) {
            assert_eq!(ms.arcs[a as usize].lower, ms.arcs[a as usize].lower);
            assert_eq!(ms.nodes[ms.arcs[a as usize].lower as usize].index, 2);
            assert_eq!(ms.nodes[ms.arcs[a as usize].upper as usize].index, 3);
        }
        for &n in &nodes_by_index_above(&ms, 3, 0.9) {
            let node = &ms.nodes[n as usize];
            assert_eq!(node.index, 3);
            assert!(node.value >= 0.9);
        }
    }

    #[test]
    fn filament_threshold_filters_both_endpoints() {
        let ms = noise_complex(7);
        let t = 0.5;
        for &a in &filament_subgraph(&ms, t) {
            let arc = &ms.arcs[a as usize];
            assert!(ms.nodes[arc.upper as usize].value >= t);
            assert!(ms.nodes[arc.lower as usize].value >= t);
        }
    }

    #[test]
    fn graph_stats_on_known_graph() {
        // two nodes, one edge: 1 component, 0 cycles
        let mut ms = MsComplex::new(Dims::new(4, 4, 4).refined(), vec![0]);
        let a = ms.add_node(0, 2, 1.0, false);
        let b = ms.add_node(1, 3, 2.0, false);
        let g = ms.add_leaf_geom(&[1, 5, 0]);
        let arc = ms.add_arc(b, a, g);
        let s = graph_stats(&ms, &[arc]);
        assert_eq!(
            s,
            GraphStats {
                nodes: 2,
                edges: 1,
                components: 1,
                cycles: 0,
                total_length_cells: 3
            }
        );
        // add a parallel arc: one independent cycle appears
        let g2 = ms.add_leaf_geom(&[1, 7, 0]);
        let arc2 = ms.add_arc(b, a, g2);
        let s2 = graph_stats(&ms, &[arc, arc2]);
        assert_eq!(s2.cycles, 1);
        assert_eq!(s2.components, 1);
    }

    #[test]
    fn persistence_curve_monotone() {
        let mut ms = noise_complex(13);
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        let curve = persistence_curve(&ms);
        assert!(curve.len() > 1);
        for w in curve.windows(2) {
            assert!(w[1].live_nodes < w[0].live_nodes);
        }
        assert_eq!(curve.last().unwrap().live_nodes, ms.n_live_nodes());
    }

    #[test]
    fn min_cut_known_graphs() {
        let mut ms = MsComplex::new(Dims::new(4, 4, 4).refined(), vec![0]);
        // a path a - b(max) - ... build: maxes m1,m2; saddles s1 between
        let s1 = ms.add_node(0, 2, 0.5, false);
        let m1 = ms.add_node(1, 3, 1.0, false);
        let m2 = ms.add_node(2, 3, 2.0, false);
        let g = ms.add_leaf_geom(&[0]);
        let a1 = ms.add_arc(m1, s1, g);
        let a2 = ms.add_arc(m2, s1, g);
        // path graph: min cut 1
        assert_eq!(min_cut(&ms, &[a1, a2]), Some(1));
        // doubled edges: min cut 2
        let a3 = ms.add_arc(m1, s1, g);
        let a4 = ms.add_arc(m2, s1, g);
        assert_eq!(min_cut(&ms, &[a1, a2, a3, a4]), Some(2));
        // single node: undefined
        assert_eq!(min_cut(&ms, &[]), None);
        // disconnected graph: cut 0
        let s2 = ms.add_node(3, 2, 0.1, false);
        let m3 = ms.add_node(4, 3, 0.2, false);
        let a5 = ms.add_arc(m3, s2, g);
        assert_eq!(min_cut(&ms, &[a1, a5]), Some(0));
    }

    #[test]
    fn min_cut_on_cycle_is_two() {
        let mut ms = MsComplex::new(Dims::new(4, 4, 4).refined(), vec![0]);
        // square cycle: s1-m1-s2-m2-s1
        let s1 = ms.add_node(0, 2, 0.1, false);
        let s2 = ms.add_node(1, 2, 0.2, false);
        let m1 = ms.add_node(2, 3, 1.0, false);
        let m2 = ms.add_node(3, 3, 1.1, false);
        let g = ms.add_leaf_geom(&[0]);
        let arcs = [
            ms.add_arc(m1, s1, g),
            ms.add_arc(m1, s2, g),
            ms.add_arc(m2, s1, g),
            ms.add_arc(m2, s2, g),
        ];
        assert_eq!(min_cut(&ms, &arcs), Some(2), "a cycle needs two cuts");
    }

    #[test]
    fn top_k_ranks_alive_first() {
        let mut ms = noise_complex(3);
        simplify(&mut ms, SimplifyParams::up_to(0.4)).unwrap();
        let top = top_k_features(&ms, 3, 5);
        assert!(!top.is_empty());
        // prominence is non-increasing
        for w in top.windows(2) {
            assert!(w[0].prominence >= w[1].prominence);
        }
        // alive maxima (infinite prominence) come first
        let n_alive = ms.node_census()[3] as usize;
        for f in top.iter().take(n_alive.min(top.len())) {
            assert!(f.prominence.is_infinite());
        }
    }

    #[test]
    fn arc_length_stats_consistent() {
        let ms = noise_complex(9);
        let s = arc_length_stats(&ms).expect("arcs exist");
        assert_eq!(s.count, ms.n_live_arcs());
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        // arcs contain at least the two endpoints
        assert!(s.min >= 2);
    }

    #[test]
    fn nodes_surviving_decreases_with_threshold() {
        let mut ms = noise_complex(99);
        simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
        let s0 = nodes_surviving(&ms, 0.0);
        let s5 = nodes_surviving(&ms, 0.5);
        let s_inf = nodes_surviving(&ms, f32::INFINITY);
        assert!(s0 >= s5);
        assert!(s5 >= s_inf);
        assert_eq!(s_inf, ms.n_live_nodes());
    }
}

/// Minimum cut of an arc subset interpreted as an unweighted multigraph
/// (Stoer-Wagner). Returns `None` for graphs with fewer than two nodes;
/// a disconnected graph has cut 0. The paper's Fig 1 lists the minimum
/// cut among the filament statistics a scientist extracts interactively.
pub fn min_cut(ms: &MsComplex, arcs: &[ArcId]) -> Option<u64> {
    // collect vertices
    let mut ids: Vec<NodeId> = arcs
        .iter()
        .flat_map(|&a| {
            let arc = &ms.arcs[a as usize];
            [arc.upper, arc.lower]
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let n = ids.len();
    if n < 2 {
        return None;
    }
    let index: HashMap<NodeId, usize> = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // dense weight matrix (filament graphs are small after filtering)
    let mut w = vec![vec![0u64; n]; n];
    for &a in arcs {
        let arc = &ms.arcs[a as usize];
        let (u, v) = (index[&arc.upper], index[&arc.lower]);
        w[u][v] += 1;
        w[v][u] += 1;
    }
    // Stoer-Wagner with vertex merging
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // maximum-adjacency search
        let mut weights = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        let mut in_a = vec![false; n];
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weights[v])
                .unwrap();
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap();
        let s = order[order.len() - 2];
        best = best.min(weights[t]);
        // merge t into s
        for &v in &active {
            if v != t && v != s {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    Some(best)
}

/// A feature ranked by the persistence at which it disappears: alive
/// nodes rank `f32::INFINITY`.
#[derive(Debug, Clone, Copy)]
pub struct RankedFeature {
    pub node: NodeId,
    pub index: u8,
    pub value: f32,
    pub prominence: f32,
}

/// The `k` most prominent features of a given Morse index, ranked by
/// cancellation persistence (alive nodes first, then by the threshold at
/// which they were simplified away). Requires the hierarchy of a
/// simplification run; nodes never touched rank as fully persistent.
pub fn top_k_features(ms: &MsComplex, index: u8, k: usize) -> Vec<RankedFeature> {
    let mut out: Vec<RankedFeature> = ms
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.index == index)
        .map(|(i, n)| RankedFeature {
            node: i as NodeId,
            index: n.index,
            value: n.value,
            prominence: n.cancel_persistence,
        })
        .collect();
    out.sort_by(|a, b| {
        b.prominence
            .total_cmp(&a.prominence)
            .then(b.value.total_cmp(&a.value))
    });
    out.truncate(k);
    out
}

/// Distribution summary of living-arc geometric lengths (in path cells):
/// count, min, median, max, mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    pub count: u64,
    pub min: u64,
    pub median: u64,
    pub max: u64,
    pub mean: f64,
}

/// Compute [`LengthStats`] over all living arcs (the paper's observation
/// that arc geometry cost scales with `n^(1/3)` is checked against this
/// in the test suite).
pub fn arc_length_stats(ms: &MsComplex) -> Option<LengthStats> {
    let mut lens: Vec<u64> = ms
        .arcs
        .iter()
        .filter(|a| a.alive)
        .map(|a| ms.geom_len(a.geom))
        .collect();
    if lens.is_empty() {
        return None;
    }
    lens.sort_unstable();
    let count = lens.len() as u64;
    let sum: u64 = lens.iter().sum();
    Some(LengthStats {
        count,
        min: lens[0],
        median: lens[lens.len() / 2],
        max: *lens.last().unwrap(),
        mean: sum as f64 / count as f64,
    })
}
