#!/usr/bin/env bash
# Offline verification harness: type-check the whole workspace and run
# its (non-proptest) test suites WITHOUT a cargo registry, using the
# API-subset stubs in scripts/offline_stubs/ (see the README there).
#
#   scripts/check-offline.sh          # build everything + run tests
#   scripts/check-offline.sh build    # build/type-check only
#
# This is NOT tier-1 verification (that is scripts/verify.sh, which needs
# the real registry); it is the strongest check available inside the
# offline growth container.
set -euo pipefail

mode="${1:-test}"
root="$(cd "$(dirname "$0")/.." && pwd)"
stubs="$root/scripts/offline_stubs"
out="${MSP_OFFLINE_OUT:-/tmp/msp-offline-check}"
mkdir -p "$out"

RUSTC=(rustc --edition 2021 -C opt-level=2 -C debug-assertions=on -L "$out" --out-dir "$out")

say() { printf '== %s\n' "$*"; }

# ---- formatting (mirrors `cargo fmt --all -- --check` in verify.sh) ----
if command -v rustfmt >/dev/null 2>&1; then
  say "rustfmt --check"
  git -C "$root" ls-files '*.rs' | (cd "$root" && xargs rustfmt --edition 2021 --check)
else
  say "rustfmt not installed; skipping format check"
fi

# ---- stub dependency crates ----
say "stubs"
"${RUSTC[@]}" --crate-type proc-macro --crate-name serde_derive "$stubs/serde_derive.rs"
"${RUSTC[@]}" --crate-type lib --crate-name serde "$stubs/serde.rs" \
  --extern serde_derive="$out/libserde_derive.so"
"${RUSTC[@]}" --crate-type lib --crate-name bytes "$stubs/bytes.rs"
"${RUSTC[@]}" --crate-type lib --crate-name crossbeam "$stubs/crossbeam.rs"
"${RUSTC[@]}" --crate-type lib --crate-name rayon "$stubs/rayon.rs"
"${RUSTC[@]}" --crate-type lib --crate-name rand "$stubs/rand.rs"
"${RUSTC[@]}" --crate-type lib --crate-name rand_chacha "$stubs/rand_chacha.rs" \
  --extern rand="$out/librand.rlib"
"${RUSTC[@]}" --crate-type lib --crate-name proptest "$stubs/proptest.rs"

# Every workspace crate gets the full extern set; rustc only resolves the
# ones a crate actually names.
EXTERNS=(
  --extern serde="$out/libserde.rlib"
  --extern bytes="$out/libbytes.rlib"
  --extern crossbeam="$out/libcrossbeam.rlib"
  --extern rayon="$out/librayon.rlib"
  --extern rand="$out/librand.rlib"
  --extern rand_chacha="$out/librand_chacha.rlib"
  --extern proptest="$out/libproptest.rlib"
)
lib() { # lib <crate_name> <path>
  say "lib $1"
  "${RUSTC[@]}" --crate-type lib --crate-name "$1" "$2" "${EXTERNS[@]}"
  EXTERNS+=(--extern "$1=$out/lib$1.rlib")
}

# ---- workspace crates, dependency order ----
lib msp_telemetry "$root/crates/telemetry/src/lib.rs"
lib msp_grid      "$root/crates/grid/src/lib.rs"
lib msp_synth     "$root/crates/synth/src/lib.rs"
lib msp_morse     "$root/crates/morse/src/lib.rs"
lib msp_segment   "$root/crates/segment/src/lib.rs"
lib msp_complex   "$root/crates/complex/src/lib.rs"
lib msp_hierarchy "$root/crates/hierarchy/src/lib.rs"
lib msp_oracle    "$root/crates/oracle/src/lib.rs"
lib msp_vmpi      "$root/crates/vmpi/src/lib.rs"
lib msp_fault     "$root/crates/fault/src/lib.rs"
lib msp_core      "$root/crates/core/src/lib.rs"
lib msp_bench     "$root/crates/bench/src/lib.rs"
lib morse_smale_parallel "$root/src/lib.rs"

# ---- binaries and examples (type-check + link) ----
bin() { # bin <name> <path>
  say "bin $1"
  "${RUSTC[@]}" --crate-type bin --crate-name "$1" "$2" "${EXTERNS[@]}"
}
bin msc "$root/src/bin/msc.rs"
bin oracle_fuzz "$root/src/bin/oracle_fuzz.rs"
for b in "$root"/crates/bench/src/bin/*.rs; do
  bin "bench_$(basename "$b" .rs)" "$b"
done
for e in "$root"/examples/*.rs; do
  bin "example_$(basename "$e" .rs)" "$e"
done

# ---- clippy (mirrors `cargo clippy --workspace --all-targets -D warnings`;
# ---- metadata-only so each target lints in seconds, no codegen) ----
if command -v clippy-driver >/dev/null 2>&1; then
  CLIPPY=(clippy-driver --edition 2021 -L "$out" --emit=metadata
          --out-dir "$out/clippy" -W clippy::all -D warnings)
  mkdir -p "$out/clippy"
  lint_lib() { # lint_lib <crate_name> <path> — --test also covers #[cfg(test)]
    say "clippy: $1"
    "${CLIPPY[@]}" --test --crate-name "$1" "$2" "${EXTERNS[@]}"
  }
  lint_bin() { # lint_bin <name> <path>
    say "clippy: $1"
    "${CLIPPY[@]}" --crate-type bin --crate-name "$1" "$2" "${EXTERNS[@]}"
  }
  lint_lib msp_telemetry "$root/crates/telemetry/src/lib.rs"
  lint_lib msp_grid      "$root/crates/grid/src/lib.rs"
  lint_lib msp_synth     "$root/crates/synth/src/lib.rs"
  lint_lib msp_morse     "$root/crates/morse/src/lib.rs"
  lint_lib msp_segment   "$root/crates/segment/src/lib.rs"
  lint_lib msp_complex   "$root/crates/complex/src/lib.rs"
  lint_lib msp_hierarchy "$root/crates/hierarchy/src/lib.rs"
  lint_lib msp_oracle    "$root/crates/oracle/src/lib.rs"
  lint_lib msp_vmpi      "$root/crates/vmpi/src/lib.rs"
  lint_lib msp_fault     "$root/crates/fault/src/lib.rs"
  lint_lib msp_core      "$root/crates/core/src/lib.rs"
  lint_lib msp_bench     "$root/crates/bench/src/lib.rs"
  lint_lib morse_smale_parallel "$root/src/lib.rs"
  lint_bin msc "$root/src/bin/msc.rs"
  lint_bin oracle_fuzz "$root/src/bin/oracle_fuzz.rs"
  for b in "$root"/crates/bench/src/bin/*.rs; do
    lint_bin "bench_$(basename "$b" .rs)" "$b"
  done
  for e in "$root"/examples/*.rs; do
    lint_bin "example_$(basename "$e" .rs)" "$e"
  done
  for t in "$root"/crates/*/tests/*.rs "$root"/tests/*.rs; do
    [ -e "$t" ] || continue
    say "clippy: itest $(basename "$t" .rs)"
    "${CLIPPY[@]}" --test --crate-name "itest_$(basename "$t" .rs)" "$t" "${EXTERNS[@]}"
  done
else
  say "clippy-driver not installed; skipping lint check"
fi

[ "$mode" = build ] && { say "build OK (tests skipped)"; exit 0; }

# ---- unit tests (in-crate #[cfg(test)] modules) ----
unit() { # unit <crate_name> <path>
  say "unit tests: $1"
  "${RUSTC[@]}" --test --crate-name "$1" "$2" "${EXTERNS[@]}" -o "$out/test_$1"
  "$out/test_$1" --test-threads "$(nproc)" -q
}
unit msp_telemetry "$root/crates/telemetry/src/lib.rs"
unit msp_grid      "$root/crates/grid/src/lib.rs"
unit msp_synth     "$root/crates/synth/src/lib.rs"
unit msp_morse     "$root/crates/morse/src/lib.rs"
unit msp_segment   "$root/crates/segment/src/lib.rs"
unit msp_complex   "$root/crates/complex/src/lib.rs"
unit msp_hierarchy "$root/crates/hierarchy/src/lib.rs"
unit msp_oracle    "$root/crates/oracle/src/lib.rs"
unit msp_vmpi      "$root/crates/vmpi/src/lib.rs"
unit msp_fault     "$root/crates/fault/src/lib.rs"
unit msp_core      "$root/crates/core/src/lib.rs"
unit msp_bench     "$root/crates/bench/src/lib.rs"

# ---- integration tests (tests/*.rs; proptest-based ones run against the
# ---- proptest stub: same cases, fixed seeds, no shrinking) ----
itest() { # itest <path>
  local name
  name="itest_$(basename "$1" .rs)"
  say "integration test: $1"
  "${RUSTC[@]}" --test --crate-name "$name" "$1" "${EXTERNS[@]}" -o "$out/$name"
  "$out/$name" --test-threads "$(nproc)" -q
}
for t in "$root"/crates/*/tests/*.rs "$root"/tests/*.rs; do
  [ -e "$t" ] || continue
  itest "$t"
done

# ---- trace-schema self-check (round-trip parse, flow-edge pairing,
# ---- span totals vs recorder) on a real traced run ----
say "trace self-check"
mkdir -p "$out/results"
MSP_RESULTS_DIR="$out/results" "$out/bench_trace_check"

# ---- kernel microbench smoke: flat vs two-heap kernels on tiny
# ---- workloads, gating on bit-exact gradient bytes + arc stores and
# ---- the bench-schema round-trip
say "kernel microbench smoke"
MSP_SCALE=small MSP_RESULTS_DIR="$out/results" "$out/bench_kernel_bench"

# ---- local-stage scaling smoke: thread sweep on a tiny volume, gating
# ---- on bit-exact output across thread counts + bench-schema round-trip
# ---- (no speedup assertion: smoke volumes are too small to time);
# ---- MSP_CHECK=1 runs the oracle invariant checker inside every run
# ---- and the bench fails on any nonzero violation counter
say "local-stage scaling smoke"
MSP_CHECK=1 MSP_SCALE=small MSP_THREADS=1,2,4 MSP_RESULTS_DIR="$out/results" \
  "$out/bench_local_scaling"

# ---- segmentation scaling smoke: rank sweep with --segment on, gating
# ---- on byte-identical labeled volumes, partition-independent round
# ---- counts and the pointer-jumping round bound
say "segmentation scaling smoke"
MSP_CHECK=1 MSP_SCALE=small MSP_RANKS=1,2,4 MSP_RESULTS_DIR="$out/results" \
  "$out/bench_segment_scaling"

# ---- segmentation end-to-end smoke: a 4-rank --segment --check run
# ---- must write a labeled volume byte-identical to the 1-rank run,
# ---- and the labeled-volume export must read it back
say "segmentation end-to-end smoke"
"$out/msc" synth --kind noise --size 17 --seed 9 --output "$out/seg.raw"
"$out/msc" compute --input "$out/seg.raw" --dims 17,17,17 --ranks 1 --blocks 8 \
  --merge full --segment --check --output "$out/seg1.msc"
"$out/msc" compute --input "$out/seg.raw" --dims 17,17,17 --ranks 4 --blocks 8 \
  --merge full --segment --check --output "$out/seg4.msc"
cmp "$out/seg1.msc.seg" "$out/seg4.msc.seg"
"$out/msc" export "$out/seg4.msc" --labels combined \
  --labels-vtk "$out/labels.vtk" --labels-csv "$out/labels.csv"

# ---- irregular-decomposition smoke: adaptive (feature-density) splits
# ---- on non-power-of-two rank counts must write all three artifacts
# ---- byte-identical to the canonical 1-rank uniform-free run
say "irregular decomposition smoke"
"$out/msc" compute --input "$out/seg.raw" --dims 17,17,17 --ranks 1 --blocks 6 \
  --decomp adaptive --merge full --hierarchy --check --output "$out/irr1.msc"
"$out/msc" compute --input "$out/seg.raw" --dims 17,17,17 --ranks 4 --blocks 6 \
  --decomp adaptive --merge full --hierarchy --check --output "$out/irr4.msc"
cmp "$out/irr1.msc" "$out/irr4.msc"
cmp "$out/irr1.msc.seg" "$out/irr4.msc.seg"
cmp "$out/irr1.msc.msh" "$out/irr4.msc.msh"

# ---- serve smoke: precompute an artifact with --hierarchy, drive the
# ---- query layer over stdio with repeated keys, and gate on all-ok
# ---- responses, a nonzero cache hit rate and the p50<=p99 latency
# ---- self-check in the serve summary
say "serve smoke"
"$out/msc" compute --input "$out/seg.raw" --dims 17,17,17 --ranks 2 --blocks 8 \
  --merge full --hierarchy --check --output "$out/serve.msc"
printf '%s\n' \
  '{"op":"datasets"}' \
  '{"op":"threshold","t":0.2}' \
  '{"op":"threshold","t":0.2}' \
  '{"op":"threshold","t":40,"ordering":"count"}' \
  '{"op":"extrema","t":0.2,"top":3}' \
  '{"op":"segment-stats","t":0.2}' \
  '{"op":"stats"}' \
  '{"op":"metrics"}' \
  '{"op":"health"}' \
  '{"op":"quit"}' \
  | "$out/msc" serve "$out/serve.msc" --threads 2 \
      > "$out/serve_out.jsonl" 2> "$out/serve_err.txt"
! grep -q '"ok":false' "$out/serve_out.jsonl" \
  || { echo "serve smoke: error response"; cat "$out/serve_out.jsonl"; exit 1; }
[ "$(wc -l < "$out/serve_out.jsonl")" -eq 10 ] \
  || { echo "serve smoke: expected 10 responses"; cat "$out/serve_out.jsonl"; exit 1; }
hits="$(grep -o '"hits":[0-9]*' "$out/serve_out.jsonl" | tail -1 | cut -d: -f2)"
[ "${hits:-0}" -gt 0 ] \
  || { echo "serve smoke: cache hit rate is zero"; cat "$out/serve_out.jsonl"; exit 1; }
grep -q 'latency self-check ok' "$out/serve_err.txt" \
  || { echo "serve smoke: missing latency self-check"; cat "$out/serve_err.txt"; exit 1; }

# ---- serve latency bench smoke: query-mix x cache-size sweep emitting
# ---- the schema-self-checked BENCH_serve.json (with histogram-vs-exact
# ---- quantile deltas gated by MSP_CHECK)
say "serve latency smoke"
MSP_CHECK=1 MSP_SCALE=small MSP_RESULTS_DIR="$out/results" "$out/bench_serve_latency"

# ---- metrics agreement check: live registry served over real TCP —
# ---- Prometheus text vs JSON snapshot vs shutdown report within 1%
say "metrics check"
"$out/bench_metrics_check"

# ---- balance sweep smoke: uniform bisection vs the adaptive splitter
# ---- under the shared feature-weight cost model; gates on adaptive
# ---- imbalance strictly below uniform at every swept rank count and
# ---- cross-checks the pipeline's assign_cost telemetry
say "balance sweep smoke"
MSP_SCALE=small MSP_RESULTS_DIR="$out/results" "$out/bench_balance_sweep"

# ---- benchmark drift report (warn-only, exit 0): committed
# ---- BENCH_*.json vs the baselines under results/baselines
say "bench trend"
MSP_RESULTS_DIR="$root/results" MSP_BASELINE_DIR="$root/results/baselines" \
  "$out/bench_bench_trend"

# ---- differential-fuzz smoke: seeded oracle fuzz iterations plus a
# ---- replay of the shrunk reproducer corpus; any diff against the
# ---- reference oracle or any invariant violation exits non-zero
# ---- (segmentation is fuzzed four ways: raw labeler diff, wire
# ---- byte-compare, per-block invariants, table liveness)
say "oracle fuzz smoke"
"$out/oracle_fuzz" --iters 25 --seed 5
say "oracle corpus replay"
"$out/oracle_fuzz" --replay "$root/tests/cases"

say "offline check OK"
