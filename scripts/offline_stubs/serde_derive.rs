//! No-op `Serialize`/`Deserialize` derives. The workspace only uses the
//! derive attributes (there is no serde_json and no erased serialization
//! call site), so expanding to nothing type-checks identically.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
