//! serde facade: re-export the no-op derives. The workspace imports
//! `serde::{Serialize, Deserialize}` only for `#[derive(...)]` position.
pub use serde_derive::{Deserialize, Serialize};
