//! `bytes` stand-in: the subset used by msp-complex::wire, msp-vmpi and
//! msp-core (cheaply-cloneable `Bytes`, growable `BytesMut`, little-
//! endian `Buf`/`BufMut` cursors).

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer (Arc-backed, with an offset
/// so `advance` works like the real crate's view semantics).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
        }
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// Growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(n))
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian write cursor.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Little-endian read cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}
