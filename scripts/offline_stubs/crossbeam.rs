//! `crossbeam` stand-in: only `crossbeam::channel::{unbounded, Sender,
//! Receiver}` with real MPMC-unbounded semantics (Mutex + Condvar), with
//! hang-up behaviour matching the real crate: `send` fails once the
//! receiver is gone, `recv` fails once all senders are gone and the
//! queue is drained, and `recv_timeout` distinguishes timeout from
//! disconnection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    pub struct SendError<T>(pub T);

    // Like the real crate: Debug regardless of `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.0.state.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receiver_alive = false;
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.0.state.lock().unwrap();
            if !s.receiver_alive {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.0.cv.wait(s).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0
                .state
                .lock()
                .unwrap()
                .queue
                .pop_front()
                .ok_or(RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.cv.wait_timeout(s, deadline - now).unwrap();
                s = guard;
            }
        }
    }
}
