//! `rayon` stand-in: `par_iter`/`into_par_iter` degrade to sequential
//! std iterators. Type-checks identically for the `.par_iter().map(..)
//! .collect()` shapes the workspace uses; execution is serial.

pub mod prelude {
    /// Sequential stand-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Sequential stand-in for rayon's `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential stand-in for rayon's `IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
