//! `rand` stand-in: the `Rng::gen_range(Range<T>)` +
//! `SeedableRng::seed_from_u64` subset msp-synth uses. The
//! `SampleUniform`/blanket-`SampleRange` shape mirrors the real crate so
//! type inference behaves identically (`T` unifies with the range's
//! element type).

/// Backend entropy source (the one method concrete generators provide).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

fn unit_f64(next: &mut dyn FnMut() -> u64) -> f64 {
    // top 53 bits -> [0, 1)
    (next() >> 11) as f64 / (1u64 << 53) as f64
}

/// Types uniform ranges can be sampled over.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

impl SampleUniform for f32 {
    fn sample_in(lo: f32, hi: f32, next: &mut dyn FnMut() -> u64) -> f32 {
        lo + (unit_f64(next) as f32) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_in(lo: f64, hi: f64, next: &mut dyn FnMut() -> u64) -> f64 {
        lo + unit_f64(next) * (hi - lo)
    }
}

impl SampleUniform for u32 {
    fn sample_in(lo: u32, hi: u32, next: &mut dyn FnMut() -> u64) -> u32 {
        lo + (next() % (hi - lo).max(1) as u64) as u32
    }
}

impl SampleUniform for u64 {
    fn sample_in(lo: u64, hi: u64, next: &mut dyn FnMut() -> u64) -> u64 {
        lo + next() % (hi - lo).max(1)
    }
}

impl SampleUniform for usize {
    fn sample_in(lo: usize, hi: usize, next: &mut dyn FnMut() -> u64) -> usize {
        lo + (next() % (hi - lo).max(1) as u64) as usize
    }
}

/// Range sampling; the blanket impl ties `R = Range<T>` exactly like the
/// real crate does.
pub trait SampleRange<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(self.start, self.end, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(*self.start(), *self.end(), next)
    }
}

/// The user-facing trait (subset).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut f = || self.next_u64();
        range.sample_with(&mut f)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        unit_f64(&mut f) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding (subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}
