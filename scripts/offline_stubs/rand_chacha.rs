//! `rand_chacha` stand-in. NOT ChaCha8 — a SplitMix64 generator with the
//! same trait surface. Deterministic per seed, but numerically different
//! from real-registry builds; structure-dependent tests are unaffected,
//! bit-exact golden values would not be.

pub struct ChaCha8Rng {
    state: u64,
}

impl rand::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl rand::RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014)
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
