//! `proptest` stand-in: enough of the API to RUN this workspace's
//! property tests offline. Differences from the real crate: fixed seed
//! per test (deterministic, not persisted), no shrinking on failure, and
//! `prop_assume!` rejections simply skip the case (bounded retries)
//! instead of re-drawing with feedback.

/// SplitMix64; independent from the `rand` stub on purpose.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Reject,
    Fail(String),
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u32, u64, usize, u8, u16);

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end as i64 - self.start as i64).max(1) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// `prop_oneof!` backend: uniform choice among boxed strategies.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        range: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.range.end - self.range.start).max(1) as u64;
            let len = self.range.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` for the types this workspace uses.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// A position into any collection, scaled by `index(len)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }
}

/// Mirror of the real crate's `prelude::prop` module alias (the subset
/// this workspace names).
pub mod prop {
    pub use crate::{collection, sample};
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = stringify!($name)
                    .bytes()
                    .fold(0xA076_1D64_78BD_642Fu64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01B3)
                    });
                let mut __rng = $crate::TestRng::new(__seed);
                let mut __done = 0u32;
                let mut __tries = 0u32;
                while __done < __cfg.cases && __tries < __cfg.cases.saturating_mul(20) {
                    __tries += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __tries, msg)
                        }
                    }
                }
                assert!(
                    __done > 0,
                    "proptest {}: every generated case was rejected",
                    stringify!($name)
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($s)),+];
        $crate::Union::new(options)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
