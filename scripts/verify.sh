#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite against the real
# cargo registry. This is the gate CI / the driver runs; inside the
# offline growth container (no registry) use scripts/check-offline.sh
# instead, which runs the same suites against the API-subset stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo metadata --offline --format-version 1 >/dev/null 2>&1 \
   && ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "verify.sh: cargo cannot resolve the workspace (no registry?);" >&2
  echo "           falling back to scripts/check-offline.sh" >&2
  exec scripts/check-offline.sh
fi

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# trace-schema self-check: round-trip parse + flow-edge pairing +
# span-vs-recorder totals on a real traced run (exits non-zero on drift)
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
MSP_RESULTS_DIR="$tracedir" cargo run -q --release -p msp-bench --bin trace_check

# local-stage scaling smoke: thread sweep on a tiny volume, gating on
# bit-exact output across thread counts + bench-schema round-trip;
# MSP_CHECK=1 runs the oracle invariant checker inside every run and
# the bench fails on any nonzero violation counter
MSP_CHECK=1 MSP_SCALE=small MSP_THREADS=1,2,4 MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin local_scaling

# differential-fuzz smoke: seeded oracle fuzz iterations plus a replay
# of the shrunk reproducer corpus; any diff against the reference
# oracle or any invariant violation exits non-zero
cargo run -q --release --bin oracle_fuzz -- --iters 25 --seed 5
cargo run -q --release --bin oracle_fuzz -- --replay tests/cases

echo "verify OK"
