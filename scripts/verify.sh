#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite against the real
# cargo registry. This is the gate CI / the driver runs; inside the
# offline growth container (no registry) use scripts/check-offline.sh
# instead, which runs the same suites against the API-subset stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo metadata --offline --format-version 1 >/dev/null 2>&1 \
   && ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "verify.sh: cargo cannot resolve the workspace (no registry?);" >&2
  echo "           falling back to scripts/check-offline.sh" >&2
  exec scripts/check-offline.sh
fi

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# trace-schema self-check: round-trip parse + flow-edge pairing +
# span-vs-recorder totals on a real traced run (exits non-zero on drift)
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
MSP_RESULTS_DIR="$tracedir" cargo run -q --release -p msp-bench --bin trace_check

# kernel microbench smoke: flat vs two-heap kernels on tiny workloads,
# gating on bit-exact gradient bytes + arc stores and the bench-schema
# round-trip (timings at this scale are incidental)
MSP_SCALE=small MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin kernel_bench

# local-stage scaling smoke: thread sweep on a tiny volume, gating on
# bit-exact output across thread counts + bench-schema round-trip;
# MSP_CHECK=1 runs the oracle invariant checker inside every run and
# the bench fails on any nonzero violation counter
MSP_CHECK=1 MSP_SCALE=small MSP_THREADS=1,2,4 MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin local_scaling

# segmentation scaling smoke: rank sweep with --segment on, gating on
# byte-identical labeled volumes, partition-independent round counts,
# the pointer-jumping round bound, and the bench-schema round-trip
MSP_CHECK=1 MSP_SCALE=small MSP_RANKS=1,2,4 MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin segment_scaling

# segmentation end-to-end smoke: a 4-rank --segment --check run must
# write a labeled volume byte-identical to the 1-rank run, and the
# labeled-volume export must read it back
cargo run -q --release --bin msc -- synth --kind noise --size 17 --seed 9 \
  --output "$tracedir/seg.raw"
cargo run -q --release --bin msc -- compute --input "$tracedir/seg.raw" \
  --dims 17,17,17 --ranks 1 --blocks 8 --merge full --segment --check \
  --output "$tracedir/seg1.msc"
cargo run -q --release --bin msc -- compute --input "$tracedir/seg.raw" \
  --dims 17,17,17 --ranks 4 --blocks 8 --merge full --segment --check \
  --output "$tracedir/seg4.msc"
cmp "$tracedir/seg1.msc.seg" "$tracedir/seg4.msc.seg"
cargo run -q --release --bin msc -- export "$tracedir/seg4.msc" \
  --labels combined --labels-vtk "$tracedir/labels.vtk" \
  --labels-csv "$tracedir/labels.csv"

# irregular-decomposition smoke: adaptive (feature-density) splits on
# non-power-of-two rank counts must write all three artifacts
# byte-identical to the canonical 1-rank run
cargo run -q --release --bin msc -- compute --input "$tracedir/seg.raw" \
  --dims 17,17,17 --ranks 1 --blocks 6 --decomp adaptive --merge full \
  --hierarchy --check --output "$tracedir/irr1.msc"
cargo run -q --release --bin msc -- compute --input "$tracedir/seg.raw" \
  --dims 17,17,17 --ranks 4 --blocks 6 --decomp adaptive --merge full \
  --hierarchy --check --output "$tracedir/irr4.msc"
cmp "$tracedir/irr1.msc" "$tracedir/irr4.msc"
cmp "$tracedir/irr1.msc.seg" "$tracedir/irr4.msc.seg"
cmp "$tracedir/irr1.msc.msh" "$tracedir/irr4.msc.msh"

# serve smoke: precompute an artifact with --hierarchy, drive the query
# layer over stdio with repeated keys, and gate on all-ok responses, a
# nonzero cache hit rate and the p50<=p99 latency self-check
cargo run -q --release --bin msc -- compute --input "$tracedir/seg.raw" \
  --dims 17,17,17 --ranks 2 --blocks 8 --merge full --hierarchy --check \
  --output "$tracedir/serve.msc"
printf '%s\n' \
  '{"op":"datasets"}' \
  '{"op":"threshold","t":0.2}' \
  '{"op":"threshold","t":0.2}' \
  '{"op":"threshold","t":40,"ordering":"count"}' \
  '{"op":"extrema","t":0.2,"top":3}' \
  '{"op":"segment-stats","t":0.2}' \
  '{"op":"stats"}' \
  '{"op":"metrics"}' \
  '{"op":"health"}' \
  '{"op":"quit"}' \
  | cargo run -q --release --bin msc -- serve "$tracedir/serve.msc" --threads 2 \
      > "$tracedir/serve_out.jsonl" 2> "$tracedir/serve_err.txt"
! grep -q '"ok":false' "$tracedir/serve_out.jsonl" \
  || { echo "serve smoke: error response"; cat "$tracedir/serve_out.jsonl"; exit 1; }
[ "$(wc -l < "$tracedir/serve_out.jsonl")" -eq 10 ] \
  || { echo "serve smoke: expected 10 responses"; cat "$tracedir/serve_out.jsonl"; exit 1; }
hits="$(grep -o '"hits":[0-9]*' "$tracedir/serve_out.jsonl" | tail -1 | cut -d: -f2)"
[ "${hits:-0}" -gt 0 ] \
  || { echo "serve smoke: cache hit rate is zero"; cat "$tracedir/serve_out.jsonl"; exit 1; }
grep -q 'latency self-check ok' "$tracedir/serve_err.txt" \
  || { echo "serve smoke: missing latency self-check"; cat "$tracedir/serve_err.txt"; exit 1; }

# serve latency bench smoke: query-mix x cache-size sweep emitting the
# schema-self-checked BENCH_serve.json (now with histogram-vs-exact
# quantile deltas gated by MSP_CHECK)
MSP_CHECK=1 MSP_SCALE=small MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin serve_latency

# metrics agreement check: live registry served over real TCP — the
# Prometheus text exposition, the {"op":"metrics"} JSON snapshot and
# the shutdown report must agree within 1%
cargo run -q --release -p msp-bench --bin metrics_check

# balance sweep smoke: uniform bisection vs the adaptive splitter under
# the shared feature-weight cost model; gates on adaptive imbalance
# strictly below uniform at every swept rank count, cross-checks the
# pipeline's assign_cost telemetry, and runs the deferred multicore
# speedup gate when the host exposes >= 4 CPUs
MSP_SCALE=small MSP_RESULTS_DIR="$tracedir" \
  cargo run -q --release -p msp-bench --bin balance_sweep

# benchmark drift report (warn-only): committed BENCH_*.json vs the
# baselines under results/baselines
cargo run -q --release -p msp-bench --bin bench_trend

# differential-fuzz smoke: seeded oracle fuzz iterations plus a replay
# of the shrunk reproducer corpus; any diff against the reference
# oracle or any invariant violation exits non-zero (segmentation is
# fuzzed four ways: raw labeler diff, wire byte-compare, per-block
# invariants, table liveness)
cargo run -q --release --bin oracle_fuzz -- --iters 25 --seed 5
cargo run -q --release --bin oracle_fuzz -- --replay tests/cases

echo "verify OK"
