//! 2D Morse-Smale complex of a terrain height field — the paper's
//! background illustration (Fig 2) as a runnable example. The refined
//! cubical-complex machinery is dimension generic: a grid with `nz = 1`
//! has vertices, edges and quads only, so maxima are critical quads.
//!
//! ```text
//! cargo run --release --example terrain_2d
//! ```

use morse_smale_parallel::complex::query;
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::prelude::*;
use std::f32::consts::PI;
use std::sync::Arc;

fn main() {
    let n = 129u32;
    let dims = Dims::new(n, n, 1);
    // rolling hills with a deterministic jitter to break plateaus
    let field = ScalarField::from_fn(dims, |x, y, _| {
        let (u, v) = (x as f32 / (n - 1) as f32, y as f32 / (n - 1) as f32);
        (3.0 * PI * u).sin() * (2.0 * PI * v).cos()
            + 0.35 * (7.0 * PI * u + 1.3).cos() * (5.0 * PI * v).sin()
            + 0.002 * synth::basic::hash_unit(7, dims.vertex_index(x, y, 0))
    });
    println!("terrain: {n}x{n} height field");

    let input = Input::Memory(Arc::new(field));
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::full_merge(4),
        ..Default::default()
    };
    let result = run_parallel(&input, 4, 4, &params, None).unwrap();
    let ms = &result.outputs[0];
    let c = ms.node_census();
    println!(
        "2D MS complex: {} minima (blue), {} saddles (green), {} maxima (red); {} arcs",
        c[0],
        c[1],
        c[2],
        ms.n_live_arcs()
    );
    assert_eq!(c[3], 0, "no index-3 critical points in 2D");
    println!(
        "Euler characteristic chi = {} (1 for a disk)",
        c[0] as i64 - c[1] as i64 + c[2] as i64
    );

    // peaks ranked by prominence, as a terrain analyst would list summits
    println!("\nmost prominent peaks:");
    for f in query::top_k_features(ms, 2, 8) {
        let coord = ms.node_coord(f.node);
        println!(
            "  peak at cell ({:>5.1}, {:>5.1})  height {:>6.3}  prominence {}",
            coord.x as f32 / 2.0,
            coord.y as f32 / 2.0,
            f.value,
            if f.prominence.is_infinite() {
                "inf".into()
            } else {
                format!("{:.3}", f.prominence)
            }
        );
    }

    // ridge network (saddle -> maximum arcs in 2D have lower index 1)
    let ridges = query::arcs_of_type(ms, 1);
    let ridge_arcs: Vec<_> = ridges
        .iter()
        .copied()
        .filter(|&a| ms.nodes[ms.arcs[a as usize].upper as usize].index == 2)
        .collect();
    let stats = query::graph_stats(ms, &ridge_arcs);
    println!(
        "\nridge network: {} arcs, {} nodes, {} components, {} cycles",
        stats.edges, stats.nodes, stats.components, stats.cycles
    );
}
