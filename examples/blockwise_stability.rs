//! The paper's Fig 4 study: how stable are the nodes and arcs of the MS
//! complex when the *same* field is computed with different numbers of
//! blocks?
//!
//! The hydrogen-like field has stable features (three aligned maxima and
//! a toroidal ridge) plus a large flat exterior where critical points are
//! *unstable* and may shift with the blocking. After 1% persistence
//! simplification the block-boundary artifacts cancel away and the
//! significant features agree across blockings.
//!
//! ```text
//! cargo run --release --example blockwise_stability
//! ```

use morse_smale_parallel::complex::query;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn main() {
    let field = synth::hydrogen(65);
    let input = Input::Memory(Arc::new(field));
    let feature_value = 255.0 * 14.5 / 25.0; // the paper filters at 14.5 on its scale

    println!(
        "hydrogen-like field 65^3, byte-valued; feature filter: maxima above {feature_value:.0}"
    );
    println!(
        "\n{:>7} {:>12} {:>12} {:>14} {:>16}",
        "blocks", "raw nodes", "1% nodes", "stable maxima", "filament arcs"
    );

    for n_blocks in [1u32, 8, 64] {
        // finest-scale run (no simplification) to show the artifact bloat
        let raw = run_parallel(
            &input,
            n_blocks.min(8),
            n_blocks,
            &PipelineParams {
                persistence_frac: 0.0,
                plan: MergePlan::none(),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let raw_nodes: u64 = raw.outputs.iter().map(|c| c.n_live_nodes()).sum();

        // 1%-simplified, fully merged run: boundary artifacts resolve
        let merged = run_parallel(
            &input,
            n_blocks.min(8),
            n_blocks,
            &PipelineParams {
                persistence_frac: 0.01,
                plan: MergePlan::full_merge(n_blocks),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let ms = &merged.outputs[0];
        let stable_maxima = query::nodes_by_index_above(ms, 3, feature_value).len();
        let filaments = query::filament_subgraph(ms, feature_value).len();
        println!(
            "{:>7} {:>12} {:>12} {:>14} {:>16}",
            n_blocks,
            raw_nodes,
            ms.n_live_nodes(),
            stable_maxima,
            filaments
        );
    }

    println!(
        "\nReading the table: raw node counts grow with blocking (spurious\n\
         boundary critical points), but after 1% simplification and a full\n\
         merge the significant features are stable across blockings —\n\
         the paper's §V-A stability property."
    );
}
