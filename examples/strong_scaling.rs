//! Miniature strong-scaling study driven by the simulation driver:
//! the shape of the paper's Fig 9 on a workstation.
//!
//! Per-rank compute is *measured* (the blocks are really computed);
//! communication and I/O times come from the BG/P-like torus and
//! parallel-filesystem models. Pass a custom rank list:
//!
//! ```text
//! cargo run --release --example strong_scaling -- 8 64 512
//! ```

use morse_smale_parallel::core::{simulate, MergePlan, SimParams};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;

fn main() {
    let ranks: Vec<u32> = {
        let args: Vec<u32> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("rank counts"))
            .collect();
        if args.is_empty() {
            vec![8, 16, 32, 64, 128, 256]
        } else {
            args
        }
    };
    let dims = Dims::new(96, 112, 64);
    let field = synth::jet(dims, 160, 2012);
    println!(
        "jet-like field {}x{}x{}; full merge, radix-8-preferred plans",
        dims.nx, dims.ny, dims.nz
    );
    println!(
        "\n{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "ranks", "read(s)", "compute", "merge", "write", "total", "eff(%)"
    );

    let mut base: Option<(u32, f64)> = None;
    for &p in &ranks {
        let params = SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::full_merge(p),
            ..Default::default()
        };
        let r = simulate(&field, p, &params).unwrap();
        let eff = match base {
            None => {
                base = Some((p, r.total_s));
                100.0
            }
            Some((p0, t0)) => 100.0 * (t0 / r.total_s) / (p as f64 / p0 as f64),
        };
        println!(
            "{:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>8.1}",
            p, r.read_s, r.compute_s, r.merge_s, r.write_s, r.total_s, eff
        );
    }
    println!("\nAt low rank counts compute dominates; as ranks grow the");
    println!("merge stage takes over — the crossover the paper reports.");
}
