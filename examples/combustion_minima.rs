//! The paper's JET use case (§VI-D1): find the significant minima of a
//! turbulent mixture-fraction field — the cores of *dissipation
//! elements* correlated with flame extinction — by computing and
//! simplifying the MS complex in parallel.
//!
//! ```text
//! cargo run --release --example combustion_minima
//! ```

use morse_smale_parallel::complex::query;
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn main() {
    // jet-like mixture fraction at 1/8 the paper's grid (96 x 112 x 64)
    let dims = Dims::new(96, 112, 64);
    let field = synth::jet(dims, 160, 2012);
    println!(
        "jet-like mixture fraction: {}x{}x{} ({:.1} MB as f32)",
        dims.nx,
        dims.ny,
        dims.nz,
        dims.n_verts() as f64 * 4.0 / 1e6
    );

    // 16 ranks, one block each, partial merge of two radix-4 rounds
    // (16 -> 1), as the paper recommends for analysis-sized outputs
    let input = Input::Memory(Arc::new(field));
    let params = PipelineParams {
        persistence_frac: 0.05,
        plan: MergePlan::heuristic(16, 1),
        ..Default::default()
    };
    let result = run_parallel(&input, 16, 16, &params, None).unwrap();
    let ms = &result.outputs[0];

    let census = ms.node_census();
    println!(
        "merged + simplified complex: {} nodes [{} min / {} 1s / {} 2s / {} max], {} arcs",
        ms.n_live_nodes(),
        census[0],
        census[1],
        census[2],
        census[3],
        ms.n_live_arcs()
    );

    // dissipation-element cores: significant minima inside the jet
    // (mixture fraction clearly above the coflow value of ~0)
    let minima = query::nodes_by_index_above(ms, 0, 0.05);
    println!(
        "{} significant minima above the coflow level (dissipation-element cores)",
        minima.len()
    );
    let mut values: Vec<f32> = minima.iter().map(|&n| ms.nodes[n as usize].value).collect();
    values.sort_by(f32::total_cmp);
    if !values.is_empty() {
        println!(
            "minimum-value distribution: min {:.3}, median {:.3}, max {:.3}",
            values[0],
            values[values.len() / 2],
            values[values.len() - 1]
        );
    }

    // per-rank timing summary (the paper's Fig 9 stages, at toy scale)
    let stat = |key: &str| {
        result
            .telemetry
            .phase_stat(key)
            .map(|s| s.seconds.max)
            .unwrap_or(0.0)
    };
    println!(
        "\nstage times (max over 16 ranks): read {:.3}s  gradient {:.3}s  trace {:.3}s  simplify {:.3}s",
        stat("read"),
        stat("gradient"),
        stat("trace"),
        stat("simplify"),
    );

    // persist the full telemetry (per-rank + cross-rank aggregates)
    let mut report = result.telemetry.clone();
    report.name = "combustion_minima".to_string();
    match report.write(std::path::Path::new("results")) {
        Ok(p) => println!("telemetry written to {}", p.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}
