//! Quickstart: compute, simplify and explore the MS complex of a small
//! synthetic field.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morse_smale_parallel::complex::query;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn main() {
    // A 65^3 sinusoidal field with 4 features per side (the paper's
    // synthetic complexity family, Fig 5).
    let field = synth::sinusoid(65, 4);
    println!("field: 65^3 sinusoid, complexity 4");

    // Serial computation: one block, no merge rounds.
    let input = Input::Memory(Arc::new(field));
    let params = PipelineParams {
        persistence_frac: 0.0, // keep the finest-scale complex for now
        ..Default::default()
    };
    let result = run_parallel(&input, 1, 1, &params, None).unwrap();
    let ms = &result.outputs[0];

    let c = ms.node_census();
    println!(
        "finest-scale complex: {} nodes ({} min, {} 1-saddle, {} 2-saddle, {} max), {} arcs",
        ms.n_live_nodes(),
        c[0],
        c[1],
        c[2],
        c[3],
        ms.n_live_arcs()
    );
    println!(
        "Euler characteristic chi = {} (must be 1 on a box)",
        c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
    );

    // Multi-resolution exploration: simplify at increasing persistence.
    let mut ms = ms.clone();
    for frac in [0.01f32, 0.05, 0.25] {
        simplify(&mut ms, SimplifyParams::up_to(frac * 2.0)).unwrap(); // range = 2
        let c = ms.node_census();
        println!(
            "after {:>4.0}% persistence: {:>5} nodes  [{}, {}, {}, {}]  {} arcs",
            frac * 100.0,
            ms.n_live_nodes(),
            c[0],
            c[1],
            c[2],
            c[3],
            ms.n_live_arcs()
        );
    }

    // The persistence curve the hierarchy encodes (interactive
    // exploration in the paper's Fig 1 pipeline).
    let curve = query::persistence_curve(&ms);
    println!(
        "persistence hierarchy: {} cancellations recorded, final {} nodes",
        curve.len() - 1,
        curve.last().unwrap().live_nodes
    );
}
