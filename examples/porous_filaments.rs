//! The paper's Fig 1 scenario: extract the filament structure of a
//! porous material from the 1-skeleton of its MS complex.
//!
//! The field is a signed-distance-like level function of a triply
//! periodic surface (see `msp_synth::porous`). Filaments — the 3D
//! ridge lines of the solid — are the 2-saddle→maximum arcs whose
//! endpoint values exceed a threshold. Because the complex is an
//! embedded graph, the filament network can then be analysed with plain
//! graph algorithms: component count, cycle count, total length — the
//! statistics the paper's scientist explores interactively.
//!
//! ```text
//! cargo run --release --example porous_filaments
//! ```

use morse_smale_parallel::complex::query;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 65;
    let field = synth::porous(n, 3, 0.05, 42);
    let (lo, hi) = field.min_max();
    println!("porous field: {n}^3, 3 pores/side, range [{lo:.2}, {hi:.2}]");

    // parallel computation: 8 blocks on 8 ranks, full merge
    let input = Input::Memory(Arc::new(field));
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::full_merge(8),
        ..Default::default()
    };
    let result = run_parallel(&input, 8, 8, &params, None).unwrap();
    let ms = &result.outputs[0];
    println!(
        "merged complex: {} nodes, {} arcs (threshold = {:.3})",
        ms.n_live_nodes(),
        ms.n_live_arcs(),
        result.threshold
    );

    // parameter study: filament graphs for several iso-thresholds —
    // "viewing the filament structures for multiple threshold values"
    println!(
        "\n{:>10} {:>8} {:>8} {:>11} {:>8} {:>13}",
        "threshold", "arcs", "nodes", "components", "cycles", "length(cells)"
    );
    for t in [0.0f32, 0.5, 1.0, 1.5, 2.0] {
        let arcs = query::filament_subgraph(ms, t);
        let stats = query::graph_stats(ms, &arcs);
        println!(
            "{:>10.2} {:>8} {:>8} {:>11} {:>8} {:>13}",
            t, stats.edges, stats.nodes, stats.components, stats.cycles, stats.total_length_cells
        );
    }

    // The Schwarz-P solid's ridge network is connected and cyclic at low
    // thresholds — sanity-check the expected qualitative behaviour.
    let arcs = query::filament_subgraph(ms, 0.5);
    let stats = query::graph_stats(ms, &arcs);
    assert!(
        stats.cycles > 0,
        "periodic ridge network must contain loops"
    );
    println!(
        "\nfilament network at t=0.5 has {} independent loops",
        stats.cycles
    );
}
