//! Deterministic differential-fuzz harness for the Morse-Smale pipeline.
//!
//! ```text
//! oracle_fuzz --iters 200 --seed 5              # seeded fuzz run
//! oracle_fuzz --iters 200 --seed 5 --dump DIR   # dump failures as .case
//! oracle_fuzz --replay tests/cases              # replay a corpus
//! oracle_fuzz --replay repro.case               # replay one reproducer
//! ```
//!
//! Every generated case runs the full pipeline at a random
//! rank/block/thread/merge-schedule/fault configuration and is diffed
//! against the naive reference oracle plus the invariant checker (see
//! `morse_smale_parallel::fuzz`). Failures shrink to a minimal
//! reproducer before reporting. Exit status is nonzero on any failure.

use morse_smale_parallel::fuzz::{fuzz, replay_path};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    iters: u64,
    seed: u64,
    replay: Option<PathBuf>,
    dump: Option<PathBuf>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: oracle_fuzz [--iters N] [--seed S] [--dump DIR] [--verbose]\n\
        \x20      oracle_fuzz --replay PATH   (a .case file or a directory of them)"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        iters: 100,
        seed: 5,
        replay: None,
        dump: None,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--iters" => {
                opts.iters = val("--iters").parse().unwrap_or_else(|e| {
                    eprintln!("bad --iters: {e}");
                    usage()
                })
            }
            "--seed" => {
                opts.seed = val("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    usage()
                })
            }
            "--replay" => opts.replay = Some(PathBuf::from(val("--replay"))),
            "--dump" => opts.dump = Some(PathBuf::from(val("--dump"))),
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_opts();

    if let Some(path) = &opts.replay {
        return match replay_path(path) {
            Ok(results) => {
                let mut failed = 0;
                for (name, outcome) in &results {
                    match outcome {
                        Ok(()) => println!("replay {name}: ok"),
                        Err(e) => {
                            failed += 1;
                            println!("replay {name}: FAILED\n  {e}");
                        }
                    }
                }
                println!("replayed {} case(s), {failed} failure(s)", results.len());
                if failed == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("replay: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!("fuzzing {} case(s) from seed {} ...", opts.iters, opts.seed);
    match fuzz(opts.iters, opts.seed, |i, case| {
        if opts.verbose {
            println!(
                "[{i}] {} {}x{}x{} blocks={} ranks={} threads={} schedule={} p={}{}",
                case.kind,
                case.dims[0],
                case.dims[1],
                case.dims[2],
                case.blocks,
                case.ranks,
                case.threads,
                case.schedule,
                case.persistence,
                case.fault
                    .as_deref()
                    .map(|f| format!(" fault={f}"))
                    .unwrap_or_default()
            );
        }
    }) {
        Ok(n) => {
            println!("ok: {n} case(s) clean");
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("iteration {} FAILED: {}", f.iteration, f.reason);
            eprintln!("shrunk reproducer:\n{}", f.shrunk);
            eprintln!("shrunk failure: {}", f.shrunk_reason);
            if let Some(dir) = &opts.dump {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                } else {
                    let path = dir.join(format!("fail-seed{}-iter{}.case", opts.seed, f.iteration));
                    match std::fs::write(&path, f.shrunk.to_string()) {
                        Ok(()) => eprintln!("reproducer written to {}", path.display()),
                        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                    }
                }
            }
            ExitCode::FAILURE
        }
    }
}
