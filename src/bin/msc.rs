//! `msc` — command-line driver for the parallel Morse-Smale pipeline.
//!
//! ```text
//! msc synth    --kind sinusoid --size 65 --complexity 4 --output f.raw
//! msc compute  --input f.raw --dims 65,65,65 --dtype f32 \
//!              --ranks 8 --blocks 8 --persistence 0.01 --merge full \
//!              --output f.msc
//! msc info     f.msc
//! msc stats    f.msc --block 0
//! msc filaments f.msc --block 0 --threshold 0.5
//! msc export   f.msc --block 0 --vtk skel.vtk --csv nodes.csv
//! ```

use morse_smale_parallel::complex::export::{self, LabeledVolume, SegKind};
use morse_smale_parallel::complex::{query, wire, MsComplex};
use morse_smale_parallel::core::{
    full_merge_plan, load_dataset, msh_output_path, parse_persistence, run_parallel,
    seg_output_path, serve_lines, serve_tcp, DecompMode, FaultConfig, Input, MergePlan,
    PipelineParams, ServeConfig, ServerCore,
};
use morse_smale_parallel::fault::FaultPlan;
use morse_smale_parallel::grid::rawio::{write_raw, VolumeDType};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::segment::{wire as segwire, BlockSegmentation};
use morse_smale_parallel::synth;
use morse_smale_parallel::vmpi::fileio::{read_block_payload, read_footer};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Minimal SIGINT hook with no external crates: `signal(2)` is in every
/// libc the binary already links, and the handler only stores to an
/// atomic (async-signal-safe). Non-unix builds compile the same API to
/// a no-op that never reports an interrupt.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn interrupted() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    let opts = parse_opts(rest);
    let result = match cmd.as_str() {
        "synth" => cmd_synth(&opts),
        "compute" => cmd_compute(&opts),
        "info" => cmd_info(&opts),
        "stats" => cmd_stats(&opts),
        "filaments" => cmd_filaments(&opts),
        "export" => cmd_export(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "msc — parallel Morse-Smale complexes\n\
         commands:\n\
         \u{20} synth     --kind sinusoid|jet|rt|hydrogen|porous|noise --size N\n\
         \u{20}           [--complexity C] [--seed S] --output FILE [--dtype f32]\n\
         \u{20} compute   --input FILE --dims X,Y,Z [--dtype u8|f32|f64]\n\
         \u{20}           [--ranks N] [--blocks N] [--persistence F]\n\
         \u{20}           [--threads N]  (intra-rank threads for the local\n\
         \u{20}           stage; default: all cores, 1 = serial; output is\n\
         \u{20}           bit-identical for every N)\n\
         \u{20}           [--merge full|none|R1,R2,...] --output FILE\n\
         \u{20}           [--decomp uniform|adaptive|random:SEED]  (block\n\
         \u{20}           layout: uniform bisection, feature-density\n\
         \u{20}           adaptive splitting, or a seeded random block\n\
         \u{20}           tree; irregular modes take any --blocks count\n\
         \u{20}           and keep outputs byte-identical across ranks)\n\
         \u{20}           [--faults SPEC] [--checkpoint] [--deadline-ms MS]\n\
         \u{20}           [--trace [FILE]]  (Chrome trace + critical path;\n\
         \u{20}           default FILE: results/<output stem>.trace.json)\n\
         \u{20}           [--check]  (oracle invariant checker over every\n\
         \u{20}           output; violations fail the run; MSP_CHECK=1 too)\n\
         \u{20}           [--segment]  (full MS segmentation: labeled\n\
         \u{20}           volumes resolved by distributed path compression;\n\
         \u{20}           writes <output>.seg next to the complex)\n\
         \u{20}           [--hierarchy]  (record the full cancellation\n\
         \u{20}           sequence for threshold-free querying; implies\n\
         \u{20}           --segment; writes <output>.msh next to the complex)\n\
         \u{20}           [--progress SECS]  (heartbeat lines on stderr:\n\
         \u{20}           phase, ranks done, bytes moved; MSP_PROGRESS too)\n\
         \u{20}           SPEC: crash:R@K;drop:F->T#N;delay:F->T#N+MS;slow:R*F\n\
         \u{20} serve     FILE... (from compute --hierarchy)\n\
         \u{20}           [--listen ADDR]  (TCP; default: stdin/stdout)\n\
         \u{20}           [--cache N] [--threads N] [--report NAME]\n\
         \u{20}           [--slow-ms MS]  (log slow requests as JSON events\n\
         \u{20}           on stderr) [--slow-sample N]  (log every Nth)\n\
         \u{20}           line-delimited JSON queries: ping, datasets,\n\
         \u{20}           threshold, extrema, arc-geometry, segment-stats,\n\
         \u{20}           stats, metrics, health, quit, shutdown\n\
         \u{20}           HTTP on the same --listen port: GET /metrics\n\
         \u{20}           (Prometheus text format) and GET /healthz\n\
         \u{20} info      FILE\n\
         \u{20} stats     FILE [--block I] [--top K]\n\
         \u{20} filaments FILE [--block I] --threshold T\n\
         \u{20} export    FILE [--block I] [--vtk FILE] [--csv FILE]\n\
         \u{20}           [--labels descending|ascending|combined]\n\
         \u{20}           [--labels-vtk FILE] [--labels-csv FILE]\n\
         \u{20}           [--seg FILE]  (labeled volume source; default:\n\
         \u{20}           <FILE>.seg from a --segment compute run)"
    );
}

struct Opts {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| (*v).clone())
                .unwrap_or_default();
            if !value.is_empty() {
                it.next();
            }
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    Opts { flags, positional }
}

impl Opts {
    fn req(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
    }

    /// Valueless boolean flag, e.g. `--checkpoint`.
    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{name}: {v}")),
        }
    }

    fn file(&self) -> Result<PathBuf, String> {
        self.positional
            .first()
            .map(PathBuf::from)
            .ok_or_else(|| "missing file argument".to_string())
    }
}

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Vec<u32> = s
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad dims '{s}'")))
        .collect::<Result<_, _>>()?;
    if parts.len() != 3 {
        return Err(format!("dims must be X,Y,Z — got '{s}'"));
    }
    Ok(Dims::new(parts[0], parts[1], parts[2]))
}

fn parse_dtype(s: Option<&str>) -> Result<VolumeDType, String> {
    match s.unwrap_or("f32") {
        "u8" => Ok(VolumeDType::U8),
        "f32" => Ok(VolumeDType::F32),
        "f64" => Ok(VolumeDType::F64),
        other => Err(format!("unknown dtype '{other}' (u8|f32|f64)")),
    }
}

fn cmd_synth(o: &Opts) -> Result<(), String> {
    let kind = o.req("kind")?;
    let size: u32 = o.num("size", 65)?;
    let complexity: u32 = o.num("complexity", 4)?;
    let seed: u64 = o.num("seed", 2012)?;
    let out = PathBuf::from(o.req("output")?);
    let dtype = parse_dtype(o.opt("dtype"))?;
    let field = match kind {
        "sinusoid" => synth::sinusoid(size, complexity),
        "jet" => synth::jet(Dims::new(size, size * 7 / 6, size * 2 / 3), 160, seed),
        "rt" => synth::rayleigh_taylor(size, 48, seed),
        "hydrogen" => synth::hydrogen(size),
        "porous" => synth::porous(size, complexity.max(1), 0.05, seed),
        "noise" => synth::white_noise(Dims::cube(size), seed),
        other => return Err(format!("unknown kind '{other}'")),
    };
    write_raw(&out, &field, dtype).map_err(|e| e.to_string())?;
    let d = field.dims();
    println!(
        "wrote {} ({}x{}x{} {:?})",
        out.display(),
        d.nx,
        d.ny,
        d.nz,
        dtype
    );
    println!(
        "hint: msc compute --input {} --dims {},{},{}",
        out.display(),
        d.nx,
        d.ny,
        d.nz
    );
    Ok(())
}

fn cmd_compute(o: &Opts) -> Result<(), String> {
    let input = PathBuf::from(o.req("input")?);
    let dims = parse_dims(o.req("dims")?)?;
    let dtype = parse_dtype(o.opt("dtype"))?;
    let ranks: u32 = o.num("ranks", 8)?;
    let blocks: u32 = o.num("blocks", ranks)?;
    let persistence = parse_persistence(o.opt("persistence").unwrap_or("0.01"))?;
    let out = PathBuf::from(o.req("output")?);
    let decomp = match o.opt("decomp") {
        Some(s) => DecompMode::parse(s).map_err(|e| format!("bad --decomp: {e}"))?,
        None => DecompMode::Uniform,
    };
    let plan = match o.opt("merge").unwrap_or("full") {
        // uniform keeps the historical power-of-two heuristic (and its
        // exact schedule bytes); irregular modes accept any block count
        "full" if decomp.is_uniform() => MergePlan::full_merge(blocks),
        "full" => full_merge_plan(blocks),
        "none" => MergePlan::none(),
        spec => MergePlan::rounds(
            spec.split(',')
                .map(|r| r.trim().parse().map_err(|_| format!("bad radix '{r}'")))
                .collect::<Result<Vec<u32>, _>>()?,
        ),
    };
    let fault_plan: Option<FaultPlan> = match o.opt("faults") {
        Some(spec) => Some(spec.parse().map_err(|e| format!("bad --faults: {e}"))?),
        None => None,
    };
    let deadline_ms: u64 = o.num("deadline-ms", 5000u64)?;
    let fault = FaultConfig {
        checkpoint: o.has("checkpoint") || fault_plan.is_some(),
        plan: fault_plan,
        deadline: std::time::Duration::from_millis(deadline_ms),
    };
    let fault_active = fault.active();
    let threads: Option<usize> = match o.opt("threads") {
        Some(v) => Some(
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad value for --threads: {v}"))?,
        ),
        None => None,
    };
    let progress: Option<f64> = match o.opt("progress") {
        Some(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0 && s.is_finite())
                .ok_or_else(|| format!("bad value for --progress: {v}"))?,
        ),
        None => None,
    };
    let params = PipelineParams {
        persistence_frac: persistence,
        plan,
        decomp,
        fault,
        trace: o.has("trace"),
        threads,
        check: o.has("check"),
        // the count ordering needs region sizes, so --hierarchy turns
        // the segmentation stage on too
        segment: o.has("segment") || o.has("hierarchy"),
        hierarchy: o.has("hierarchy"),
        progress,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let r = run_parallel(
        &Input::File {
            path: input,
            dims,
            dtype,
        },
        ranks,
        blocks,
        &params,
        Some(&out),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "computed {} output block(s) in {:.2}s (threshold {:.4})",
        r.outputs.len(),
        t0.elapsed().as_secs_f64(),
        r.threshold
    );
    for (i, ms) in r.outputs.iter().enumerate() {
        let c = ms.node_census();
        println!(
            "  block {i}: {} nodes [{} min, {} 1s, {} 2s, {} max], {} arcs",
            ms.n_live_nodes(),
            c[0],
            c[1],
            c[2],
            c[3],
            ms.n_live_arcs()
        );
    }
    println!("wrote {} ({} bytes)", out.display(), r.output_bytes);
    if params.segment {
        for s in &r.segmentation {
            let (n_desc, n_asc, drained) = s.census();
            println!(
                "  seg block {}: {} descending / {} ascending region(s), {} drained voxel(s)",
                s.block_id, n_desc, n_asc, drained
            );
        }
        let rounds = r
            .telemetry
            .ranks
            .first()
            .map(|rk| rk.counter("seg_rounds"))
            .unwrap_or(0);
        println!(
            "segmentation: wrote {} ({} block(s), {} forward(s) resolved in {} \
             pointer-jump round(s), {} boundary byte(s))",
            seg_output_path(&out).display(),
            r.segmentation.len(),
            r.telemetry.counter_total("seg_forwards"),
            rounds,
            r.telemetry.counter_total("seg_boundary_bytes"),
        );
    }
    if params.hierarchy {
        let orderings: Vec<&str> = r
            .hierarchies
            .first()
            .map(|h| h.orderings().iter().map(|o| o.key()).collect())
            .unwrap_or_default();
        println!(
            "hierarchy: wrote {} ({} slot(s), {} cancellation record(s), orderings {})",
            msh_output_path(&out).display(),
            r.hierarchies.len(),
            r.telemetry.counter_total("hierarchy_records"),
            orderings.join("+"),
        );
    }
    if r.telemetry.counter_total("checks_run") > 0 {
        let tel = &r.telemetry;
        let violations: u64 = [
            "check_structural",
            "check_euler",
            "check_boundary",
            "check_vpath",
            "check_segment",
            "check_hierarchy",
        ]
        .iter()
        .map(|k| tel.counter_total(k))
        .sum();
        println!(
            "oracle check: {} complex(es) checked, {} violation(s) \
             [structural {}, euler {}, boundary {}, vpath {}, segment {}, hierarchy {}]",
            tel.counter_total("checks_run"),
            violations,
            tel.counter_total("check_structural"),
            tel.counter_total("check_euler"),
            tel.counter_total("check_boundary"),
            tel.counter_total("check_vpath"),
            tel.counter_total("check_segment"),
            tel.counter_total("check_hierarchy"),
        );
        if violations > 0 {
            return Err(format!(
                "oracle check found {violations} invariant violation(s) — see stderr notes"
            ));
        }
        if params.segment {
            // driver-side cross-structure invariant: representatives
            // must be live critical cells of the covering complex
            let tables: Vec<(u32, Vec<u64>, Vec<u64>)> = r
                .segmentation
                .iter()
                .map(|s| (s.block_id, s.mins.clone(), s.maxs.clone()))
                .collect();
            let opts = morse_smale_parallel::oracle::CheckOptions::default();
            let mut report = morse_smale_parallel::oracle::InvariantReport::default();
            morse_smale_parallel::oracle::check_segmentation_tables(
                &r.outputs,
                &tables,
                &opts,
                &mut report,
            );
            if report.segment > 0 {
                for note in &report.notes {
                    eprintln!("[msp-check] {note}");
                }
                return Err(format!(
                    "oracle check found {} segmentation-table violation(s)",
                    report.segment
                ));
            }
        }
    }
    if fault_active {
        let tel = &r.telemetry;
        println!(
            "fault summary: {} crash(es), {} retry(ies), {} round(s) replayed, \
             {} block(s) absorbed, {} checkpoint bytes, {} ms recovering",
            tel.counter_total("crashes"),
            tel.counter_total("retries"),
            tel.counter_total("rounds_replayed"),
            tel.counter_total("blocks_absorbed"),
            tel.counter_total("checkpoint_bytes"),
            tel.counter_total("recovery_ms"),
        );
    }

    // Span bookkeeping bugs are recorded, not panicked on — but a
    // non-zero incident count means some phase durations are
    // best-effort, which the user reading the telemetry should know.
    let unbalanced = r.telemetry.unbalanced_total();
    if unbalanced > 0 {
        eprintln!(
            "warning: {unbalanced} unbalanced telemetry span(s) — phase timings in the \
             report are best-effort for the affected rank(s)"
        );
    }

    // per-phase / per-rank observability next to the complex itself:
    // results/<output stem>.telemetry.json
    let stem = out
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "msc_compute".to_string());
    let mut report = r.telemetry;
    report.name = stem;
    match report.write(Path::new("results")) {
        Ok(p) => println!("telemetry: {}", p.display()),
        Err(e) => eprintln!("warning: telemetry write failed: {e}"),
    }

    if let Some(tr) = &r.trace {
        let path = match o.opt("trace") {
            Some(p) => {
                let p = PathBuf::from(p);
                if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                }
                std::fs::write(&p, tr.to_chrome_json(&report.name).pretty())
                    .map_err(|e| e.to_string())?;
                p
            }
            None => tr
                .write(Path::new("results"), &report.name)
                .map_err(|e| e.to_string())?,
        };
        println!("trace: {} (load in ui.perfetto.dev)", path.display());
        if let Some(cp) = tr.critical_path() {
            println!(
                "critical path: {:.3}s on the causal chain, {:.3}s wall clock",
                cp.total_ns as f64 * 1e-9,
                cp.wall_ns as f64 * 1e-9
            );
            let ranked = cp.ranked();
            for s in ranked.iter().take(12) {
                println!(
                    "  rank {:>2}  {:<20} {:>9.3}s  {:>5.1}% of wall",
                    s.rank,
                    s.key,
                    s.dur_ns as f64 * 1e-9,
                    cp.pct_of_wall(s)
                );
            }
            if ranked.len() > 12 {
                println!("  ... {} shorter step(s) elided", ranked.len() - 12);
            }
        }
    }
    Ok(())
}

fn load_block(path: &Path, block: usize) -> Result<MsComplex, String> {
    let footer = read_footer(path).map_err(|e| e.to_string())?;
    let entry = footer
        .get(block)
        .ok_or_else(|| format!("block {block} out of range ({} blocks)", footer.len()))?;
    let payload = read_block_payload(path, entry).map_err(|e| e.to_string())?;
    wire::deserialize(&payload).map_err(|e| e.to_string())
}

fn cmd_info(o: &Opts) -> Result<(), String> {
    let path = o.file()?;
    let footer = read_footer(&path).map_err(|e| e.to_string())?;
    println!("{}: {} output block(s)", path.display(), footer.len());
    for (i, e) in footer.iter().enumerate() {
        let ms = load_block(&path, i)?;
        println!(
            "  block {i}: {} bytes at offset {}, output slot {}, members {:?}, {} nodes / {} arcs",
            e.len,
            e.offset,
            e.writer,
            ms.member_blocks,
            ms.n_live_nodes(),
            ms.n_live_arcs()
        );
    }
    Ok(())
}

fn cmd_stats(o: &Opts) -> Result<(), String> {
    let path = o.file()?;
    let block: usize = o.num("block", 0usize)?;
    let top: usize = o.num("top", 5usize)?;
    let ms = load_block(&path, block)?;
    let c = ms.node_census();
    println!(
        "block {block}: {} nodes [{} min, {} 1-saddle, {} 2-saddle, {} max], {} arcs",
        ms.n_live_nodes(),
        c[0],
        c[1],
        c[2],
        c[3],
        ms.n_live_arcs()
    );
    if let Some(s) = query::arc_length_stats(&ms) {
        println!(
            "arc lengths (cells): min {} / median {} / max {} / mean {:.1}",
            s.min, s.median, s.max, s.mean
        );
    }
    for (name, idx) in [("maxima", 3u8), ("minima", 0)] {
        let feats = query::top_k_features(&ms, idx, top);
        if !feats.is_empty() {
            println!("top {name} by prominence:");
            for f in feats {
                println!(
                    "  node {} value {:.4} prominence {}",
                    f.node,
                    f.value,
                    if f.prominence.is_infinite() {
                        "inf".to_string()
                    } else {
                        format!("{:.4}", f.prominence)
                    }
                );
            }
        }
    }
    Ok(())
}

fn cmd_filaments(o: &Opts) -> Result<(), String> {
    let path = o.file()?;
    let block: usize = o.num("block", 0usize)?;
    let threshold: f32 = o
        .req("threshold")?
        .parse()
        .map_err(|_| "bad --threshold".to_string())?;
    let ms = load_block(&path, block)?;
    let arcs = query::filament_subgraph(&ms, threshold);
    let s = query::graph_stats(&ms, &arcs);
    println!(
        "filament network at threshold {threshold}: {} arcs, {} nodes, {} components, {} cycles, total length {} cells",
        s.edges, s.nodes, s.components, s.cycles, s.total_length_cells
    );
    if let Some(cut) = query::min_cut(&ms, &arcs) {
        println!("minimum cut: {cut}");
    }
    Ok(())
}

fn load_seg_block(path: &Path, block: usize) -> Result<BlockSegmentation, String> {
    let footer = read_footer(path)
        .map_err(|e| format!("{}: {e} (run compute with --segment?)", path.display()))?;
    let entry = footer
        .get(block)
        .ok_or_else(|| format!("block {block} out of range ({} seg blocks)", footer.len()))?;
    let payload = read_block_payload(path, entry).map_err(|e| e.to_string())?;
    segwire::deserialize(&payload)
}

fn cmd_export(o: &Opts) -> Result<(), String> {
    let path = o.file()?;
    let block: usize = o.num("block", 0usize)?;
    let mut did = false;
    if let Some(vtk) = o.opt("vtk") {
        let ms = load_block(&path, block)?;
        export::write_vtk(&ms, Path::new(vtk)).map_err(|e| e.to_string())?;
        println!("wrote {vtk}");
        did = true;
    }
    if let Some(csv) = o.opt("csv") {
        let ms = load_block(&path, block)?;
        export::write_nodes_csv(&ms, Path::new(csv)).map_err(|e| e.to_string())?;
        println!("wrote {csv}");
        did = true;
    }
    if o.opt("labels-vtk").is_some() || o.opt("labels-csv").is_some() {
        let kind = match o.opt("labels").unwrap_or("combined") {
            "descending" => SegKind::Descending,
            "ascending" => SegKind::Ascending,
            "combined" => SegKind::Combined,
            other => {
                return Err(format!(
                    "unknown --labels kind '{other}' (descending|ascending|combined)"
                ))
            }
        };
        let seg_path = match o.opt("seg") {
            Some(p) => PathBuf::from(p),
            None => seg_output_path(&path),
        };
        let seg = load_seg_block(&seg_path, block)?;
        let volume = match kind {
            SegKind::Descending => LabeledVolume::descending(seg.vdims, seg.origin, &seg.min_label),
            SegKind::Ascending => LabeledVolume::ascending(seg.vdims, seg.origin, &seg.max_label),
            SegKind::Combined => LabeledVolume::combined(
                seg.vdims,
                seg.origin,
                &seg.min_label,
                &seg.max_label,
                seg.mins.len() as u32,
            ),
        };
        let mut regions: Vec<i64> = volume.labels.clone();
        regions.sort_unstable();
        regions.dedup();
        println!(
            "block {block} {} labels: {} grid points, {} distinct region(s)",
            kind.key(),
            volume.labels.len(),
            regions.len()
        );
        if let Some(vtk) = o.opt("labels-vtk") {
            export::write_labels_vtk(&volume, Path::new(vtk)).map_err(|e| e.to_string())?;
            println!("wrote {vtk}");
            did = true;
        }
        if let Some(csv) = o.opt("labels-csv") {
            export::write_labels_csv(&volume, Path::new(csv)).map_err(|e| e.to_string())?;
            println!("wrote {csv}");
            did = true;
        }
    }
    if !did {
        return Err("nothing to do: pass --vtk, --csv, --labels-vtk and/or --labels-csv".into());
    }
    Ok(())
}

fn cmd_serve(o: &Opts) -> Result<(), String> {
    if o.positional.is_empty() {
        return Err(
            "serve needs at least one .msc artifact (from a compute run with --hierarchy)".into(),
        );
    }
    let mut datasets = Vec::new();
    for p in &o.positional {
        let path = PathBuf::from(p);
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .ok_or_else(|| format!("bad dataset path '{p}'"))?;
        let ds = load_dataset(&name, &path).map_err(|e| e.to_string())?;
        let records: usize = ds
            .hierarchies
            .iter()
            .map(|h| h.difference.len() + h.count.as_ref().map_or(0, |c| c.len()))
            .sum();
        eprintln!(
            "loaded {name}: {} block(s), {} cancellation record(s), segmentation {}",
            ds.bases.len(),
            records,
            if ds.segs.is_empty() { "no" } else { "yes" }
        );
        datasets.push(ds);
    }
    let slow_us: Option<u64> = match o.opt("slow-ms") {
        Some(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|ms| *ms >= 0.0 && ms.is_finite())
                .map(|ms| (ms * 1000.0) as u64)
                .ok_or_else(|| format!("bad value for --slow-ms: {v}"))?,
        ),
        None => None,
    };
    let config = ServeConfig {
        cache_capacity: o.num("cache", 32usize)?.max(1),
        threads: o.num("threads", 4usize)?.max(1),
        slow_us,
        slow_sample: o.num("slow-sample", 1u64)?.max(1),
    };
    let report_name = match o.opt("report") {
        Some(n) => n.to_string(),
        None => format!("{}_serve", datasets[0].name),
    };
    let core = Arc::new(ServerCore::new(datasets, config));
    // The final report must flush exactly once whether the server stops
    // via a shutdown op, stdin EOF, or Ctrl-C — whoever wins the CAS
    // writes it.
    let reported = Arc::new(AtomicBool::new(false));
    sig::install();
    match o.opt("listen") {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!(
                "serving on {addr} (send {{\"op\":\"shutdown\"}} or Ctrl-C to stop; \
                 GET /metrics for Prometheus text)"
            );
            // The accept loop polls `is_shutdown`, so turning Ctrl-C
            // into `request_shutdown` drains it through the same exit
            // path as the shutdown op; the report flush below runs on
            // the normal return.
            let watcher = {
                let core = Arc::clone(&core);
                std::thread::spawn(move || loop {
                    if sig::interrupted() {
                        core.request_shutdown();
                    }
                    if core.is_shutdown() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                })
            };
            let res = serve_tcp(&core, listener);
            core.request_shutdown(); // unblock the watcher on error exits too
            let _ = watcher.join();
            res.map_err(|e| e.to_string())?;
        }
        None => {
            // stdin cannot be unblocked from another thread: on Ctrl-C
            // the watcher flushes the report itself and exits with the
            // conventional 128+SIGINT status.
            let watcher = {
                let core = Arc::clone(&core);
                let reported = Arc::clone(&reported);
                let name = report_name.clone();
                std::thread::spawn(move || loop {
                    if sig::interrupted() {
                        flush_serve_report(&core, &name, &reported);
                        exit(130);
                    }
                    if core.is_shutdown() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                })
            };
            let stdin = std::io::stdin();
            let res = serve_lines(&core, stdin.lock(), std::io::stdout(), config.threads);
            core.request_shutdown();
            let _ = watcher.join();
            res.map_err(|e| e.to_string())?;
        }
    }
    flush_serve_report(&core, &report_name, &reported);
    Ok(())
}

/// Build, summarize and persist the serve telemetry report (at most
/// once — the `reported` flag arbitrates between the normal exit path
/// and the Ctrl-C watcher).
fn flush_serve_report(core: &ServerCore, report_name: &str, reported: &AtomicBool) {
    if reported.swap(true, Ordering::SeqCst) {
        return;
    }
    // the report build asserts the per-class quantile invariant
    let report = core.report(report_name);
    let (hits, misses) = (
        report.counter_total("serve_hits"),
        report.counter_total("serve_misses"),
    );
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    eprintln!(
        "serve: {} query(ies), {} hit(s) / {} miss(es) (hit rate {:.2}), {} coalesced, \
         {} error(s); latency self-check ok",
        report.counter_total("serve_queries"),
        hits,
        misses,
        hit_rate,
        report.counter_total("serve_coalesced"),
        report.counter_total("serve_errors"),
    );
    match report.write(Path::new("results")) {
        Ok(p) => eprintln!("serve telemetry: {}", p.display()),
        Err(e) => eprintln!("warning: telemetry write failed: {e}"),
    }
}
