//! Differential-fuzz driver: turn an [`oracle::Case`] into actual
//! pipeline runs and diff them against the naive reference oracle.
//!
//! This lives in the facade crate (not in `msp-oracle`) because it needs
//! the full pipeline — `msp-core` depends on `msp-oracle` for `--check`,
//! so the oracle crate cannot depend back on the pipeline. The
//! `oracle_fuzz` binary is a thin CLI over this module.
//!
//! One case runs four comparisons:
//!
//! 1. **Per-block differential** — the production gradient
//!    (`assign_gradient`, serial and 2-thread slab-parallel), traced
//!    arcs, and raw segmentation labels (`label_block`) against the
//!    reference implementations, byte for byte / address by address.
//! 2. **Pipeline run at the case's configuration** (ranks, threads,
//!    merge schedule, injected fault) with the invariant checker and
//!    segmentation on: every `check_*` telemetry counter must come back
//!    zero.
//! 3. **Canonical replay** — the same field and schedule at 1 rank /
//!    1 thread, no faults: outputs *and* resolved segmentations must be
//!    bit-identical to run 2's.
//! 4. **Post-hoc invariants** — `check_complex` + glue idempotency +
//!    segmentation-table liveness over the outputs on the driver side
//!    (belt and braces: this also covers the checker's own wiring into
//!    the pipeline).
//!
//! Failures shrink greedily through [`Case::shrink_candidates`] until no
//! smaller case still fails, then dump as a replayable `.case` file.

use msp_core::{
    feature_weights, full_merge_plan, run_parallel, DecompMode, FaultConfig, Input, MergePlan,
    PipelineParams, RunResult,
};
use msp_fault::FaultPlan;
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::{assign_gradient, assign_gradient_par, trace_all_arcs};
use msp_oracle::reference::{
    arcs_of_store, diff_arcs, diff_gradient, reference_arcs, reference_gradient,
};
use msp_oracle::segcheck::{diff_segmentation, reference_segmentation};
use msp_oracle::{
    case::parse_fault, check_complex, check_glue_idempotent, Case, CheckOptions, DecompKind,
    FieldKind, Schedule,
};
use std::path::Path;
use std::sync::Arc;

/// The synthetic field a case describes.
pub fn build_field(case: &Case) -> ScalarField {
    let dims = Dims::new(case.dims[0], case.dims[1], case.dims[2]);
    match case.kind {
        FieldKind::Noise => msp_synth::white_noise(dims, case.seed),
        FieldKind::Plateau(levels) => msp_synth::plateau(dims, case.seed, levels),
        FieldKind::Sinusoid(c) => msp_synth::sinusoid_dims(dims, c),
        FieldKind::Bumps(n) => msp_synth::gaussian_bumps(dims, n as usize, 0.25, case.seed),
        FieldKind::Constant => msp_synth::constant(dims, 0.5),
    }
}

/// The case's merge schedule as a concrete [`MergePlan`].
pub fn merge_plan(case: &Case) -> MergePlan {
    match &case.schedule {
        Schedule::None => MergePlan::none(),
        Schedule::Full if case.blocks <= 1 => MergePlan::none(),
        Schedule::Full if case.decomp.is_uniform() => MergePlan::full_merge(case.blocks),
        // irregular full merges need a plan valid for any block count
        Schedule::Full => full_merge_plan(case.blocks),
        Schedule::Rounds(v) => MergePlan::rounds(v.clone()),
    }
}

/// The case's decomposition mode as the pipeline's [`DecompMode`].
pub fn decomp_mode(case: &Case) -> DecompMode {
    match case.decomp {
        DecompKind::Uniform => DecompMode::Uniform,
        DecompKind::Adaptive => DecompMode::Adaptive,
        DecompKind::Random(seed) => DecompMode::RandomTree { seed },
    }
}

/// The decomposition the pipeline will build for this case, constructed
/// the same way `run_parallel` does, so the per-block differentials and
/// post-hoc checks see the exact blocks the run used.
pub fn build_decomp(case: &Case, field: &ScalarField) -> Decomposition {
    match case.decomp {
        DecompKind::Uniform => Decomposition::bisect(field.dims(), case.blocks),
        DecompKind::Adaptive => {
            let w = feature_weights(field);
            Decomposition::adaptive(field.dims(), case.blocks, &w)
        }
        DecompKind::Random(seed) => Decomposition::random_tree(field.dims(), case.blocks, seed),
    }
}

fn pipeline_params(case: &Case, canonical: bool) -> PipelineParams {
    let fault = match (&case.fault, canonical) {
        (Some(f), false) => {
            let (r, k) = parse_fault(f).expect("validated fault spec");
            FaultConfig::with_plan(FaultPlan::new().crash(r as usize, k))
        }
        _ => FaultConfig::default(),
    };
    PipelineParams {
        persistence_frac: case.persistence,
        plan: merge_plan(case),
        decomp: decomp_mode(case),
        fault,
        threads: Some(if canonical { 1 } else { case.threads as usize }),
        check: !canonical,
        segment: true,
        hierarchy: case.hierarchy,
        ..Default::default()
    }
}

fn run_pipeline(field: &ScalarField, case: &Case, canonical: bool) -> Result<RunResult, String> {
    let input = Input::Memory(Arc::new(field.clone()));
    let ranks = if canonical { 1 } else { case.ranks };
    run_parallel(
        &input,
        ranks,
        case.blocks,
        &pipeline_params(case, canonical),
        None,
    )
    .map_err(|e| {
        format!(
            "pipeline ({}): {e}",
            if canonical { "canonical" } else { "case" }
        )
    })
}

/// Run one case through every comparison. `Ok(())` means clean.
pub fn run_case(case: &Case) -> Result<(), String> {
    case.validate()?;
    let result = std::panic::catch_unwind(|| run_case_inner(case));
    match result {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

fn run_case_inner(case: &Case) -> Result<(), String> {
    let field = build_field(case);
    let decomp = build_decomp(case, &field);

    // 1. per-block differential against the reference oracle
    for b in decomp.blocks() {
        let bf = field.extract_block(b);
        let want = reference_gradient(&bf, &decomp);
        let got = assign_gradient(&bf, &decomp);
        if let Some(d) = diff_gradient(&got, &want) {
            return Err(format!(
                "block {}: gradient differs from reference: {d}",
                b.id
            ));
        }
        let par = assign_gradient_par(&bf, &decomp, 2);
        if par.bytes() != got.bytes() {
            return Err(format!(
                "block {}: 2-thread gradient differs from serial",
                b.id
            ));
        }
        let (store, _) = trace_all_arcs(&got, Default::default());
        let refined = field.dims().refined();
        let got_arcs = arcs_of_store(&store, &refined);
        let want_arcs = reference_arcs(&want, &refined);
        if let Some(d) = diff_arcs(&got_arcs, &want_arcs) {
            return Err(format!("block {}: arcs differ from reference: {d}", b.id));
        }
        // raw (pre-resolution) segmentation labels against the naive
        // step-at-a-time reference walk, as global addresses
        let seg = msp_segment::label_block(b, &refined, &got, 1);
        let got_min: Vec<u64> = seg.min_label.iter().map(|&l| seg.min_addr(l)).collect();
        let got_max: Vec<u64> = seg.max_label.iter().map(|&l| seg.max_addr(l)).collect();
        let want_seg = reference_segmentation(b, &refined, &want);
        if let Some(d) = diff_segmentation(&got_min, &got_max, &want_seg) {
            return Err(format!(
                "block {}: segmentation differs from reference: {d}",
                b.id
            ));
        }
    }

    // 2. the case's configuration, invariant checker on
    let run = run_pipeline(&field, case, false)?;
    for key in [
        "check_structural",
        "check_euler",
        "check_boundary",
        "check_vpath",
        "check_segment",
        "check_hierarchy",
    ] {
        let n = run.telemetry.counter_total(key);
        if n != 0 {
            return Err(format!("invariant counter {key} = {n} (want 0)"));
        }
    }
    let checks = run.telemetry.counter_total("checks_run");
    if checks != run.outputs.len() as u64 {
        return Err(format!(
            "checks_run = {checks} but the run has {} output(s)",
            run.outputs.len()
        ));
    }

    // 3. canonical replay: 1 rank, 1 thread, no fault — bit-identical
    let canon = run_pipeline(&field, case, true)?;
    if run.outputs.len() != canon.outputs.len() {
        return Err(format!(
            "output count {} != canonical {}",
            run.outputs.len(),
            canon.outputs.len()
        ));
    }
    for (i, (a, b)) in run.outputs.iter().zip(&canon.outputs).enumerate() {
        let (wa, wb) = (
            msp_complex::wire::serialize(a),
            msp_complex::wire::serialize(b),
        );
        if wa != wb {
            return Err(format!(
                "output {i} differs from the canonical 1-rank/1-thread run \
                 ({} vs {} bytes)",
                wa.len(),
                wb.len()
            ));
        }
    }
    if run.segmentation.len() != canon.segmentation.len() {
        return Err(format!(
            "seg block count {} != canonical {}",
            run.segmentation.len(),
            canon.segmentation.len()
        ));
    }
    for (a, b) in run.segmentation.iter().zip(&canon.segmentation) {
        let (wa, wb) = (
            msp_segment::wire::serialize(a),
            msp_segment::wire::serialize(b),
        );
        if wa != wb {
            return Err(format!(
                "seg block {} differs from the canonical 1-rank/1-thread run \
                 ({} vs {} bytes)",
                a.block_id,
                wa.len(),
                wb.len()
            ));
        }
    }
    if case.hierarchy {
        if run.hierarchies.len() != canon.hierarchies.len() {
            return Err(format!(
                "hierarchy count {} != canonical {}",
                run.hierarchies.len(),
                canon.hierarchies.len()
            ));
        }
        for (i, (a, b)) in run.hierarchies.iter().zip(&canon.hierarchies).enumerate() {
            let (wa, wb) = (
                msp_hierarchy::wire::serialize(a),
                msp_hierarchy::wire::serialize(b),
            );
            if wa != wb {
                return Err(format!(
                    "hierarchy {i} differs from the canonical 1-rank/1-thread \
                     run ({} vs {} bytes)",
                    wa.len(),
                    wb.len()
                ));
            }
        }
    }

    // 4. post-hoc invariants on the driver side
    let opts = CheckOptions::default();
    for (i, ms) in run.outputs.iter().enumerate() {
        let report = check_complex(ms, &decomp, Some(&field), &opts);
        if !report.is_clean() {
            return Err(format!(
                "output {i}: {} invariant violation(s): {:?}",
                report.total(),
                report.notes
            ));
        }
        check_glue_idempotent(ms, &decomp)
            .map_err(|e| format!("output {i}: glue idempotency: {e}"))?;
    }
    // every resolved representative must be a live critical node of
    // matching Morse index in the covering output complex
    let tables: Vec<(u32, Vec<u64>, Vec<u64>)> = run
        .segmentation
        .iter()
        .map(|s| (s.block_id, s.mins.clone(), s.maxs.clone()))
        .collect();
    let mut report = msp_oracle::InvariantReport::default();
    msp_oracle::check_segmentation_tables(&run.outputs, &tables, &opts, &mut report);
    if report.segment != 0 {
        return Err(format!(
            "{} segmentation-table violation(s): {:?}",
            report.segment, report.notes
        ));
    }
    Ok(())
}

/// Greedily shrink a failing case: keep taking the first
/// shrink-candidate that still fails until none does.
pub fn shrink(case: &Case, max_steps: usize) -> Case {
    let mut cur = case.clone();
    for _ in 0..max_steps {
        let Some(next) = cur
            .shrink_candidates()
            .into_iter()
            .find(|c| run_case(c).is_err())
        else {
            break;
        };
        cur = next;
    }
    cur
}

/// A failure found by [`fuzz`], already shrunk.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The iteration that first failed.
    pub iteration: u64,
    /// The original failing case's error.
    pub reason: String,
    /// The shrunk reproducer and its error.
    pub shrunk: Case,
    pub shrunk_reason: String,
}

/// Run `iters` generated cases from `seed`. Returns the first failure
/// (shrunk), or `Ok(iters)` when every case is clean. `progress` gets a
/// line per case.
pub fn fuzz(
    iters: u64,
    seed: u64,
    mut progress: impl FnMut(u64, &Case),
) -> Result<u64, Box<FuzzFailure>> {
    let mut rng = msp_oracle::case::SplitMix64::new(seed);
    for i in 0..iters {
        let case = Case::generate(&mut rng);
        progress(i, &case);
        if let Err(reason) = run_case(&case) {
            let shrunk = shrink(&case, 64);
            let shrunk_reason = run_case(&shrunk).err().unwrap_or_else(|| reason.clone());
            return Err(Box::new(FuzzFailure {
                iteration: i,
                reason,
                shrunk,
                shrunk_reason,
            }));
        }
    }
    Ok(iters)
}

/// A replayed case's file name and its outcome.
pub type ReplayOutcome = (String, Result<(), String>);

/// Replay every `.case` file under `path` (or `path` itself when it is a
/// file). Returns the replayed cases' names with their outcomes.
pub fn replay_path(path: &Path) -> Result<Vec<ReplayOutcome>, String> {
    let mut files: Vec<std::path::PathBuf> = if path.is_dir() {
        std::fs::read_dir(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect()
    } else {
        vec![path.to_path_buf()]
    };
    files.sort();
    if files.is_empty() {
        return Err(format!("no .case files under {}", path.display()));
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let text =
            std::fs::read_to_string(&f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        let case: Case = text
            .parse()
            .map_err(|e| format!("parsing {}: {e}", f.display()))?;
        let name = f
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| f.display().to_string());
        out.push((name, run_case(&case)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_case(kind: FieldKind, blocks: u32, ranks: u32, schedule: Schedule) -> Case {
        Case {
            kind,
            dims: [6, 6, 6],
            seed: 5,
            ranks,
            blocks,
            decomp: DecompKind::Uniform,
            threads: 2,
            schedule,
            persistence: 0.05,
            hierarchy: false,
            fault: None,
        }
    }

    #[test]
    fn noise_case_is_clean() {
        run_case(&quick_case(FieldKind::Noise, 4, 2, Schedule::Full)).unwrap();
    }

    #[test]
    fn plateau_case_is_clean() {
        run_case(&quick_case(FieldKind::Plateau(2), 2, 2, Schedule::None)).unwrap();
    }

    #[test]
    fn constant_case_is_clean() {
        run_case(&quick_case(
            FieldKind::Constant,
            4,
            4,
            Schedule::Rounds(vec![2]),
        ))
        .unwrap();
    }

    #[test]
    fn faulted_case_is_clean() {
        let mut c = quick_case(FieldKind::Noise, 4, 2, Schedule::Full);
        c.fault = Some("crash:1@1".into());
        run_case(&c).unwrap();
    }

    #[test]
    fn hierarchy_case_is_clean() {
        let mut c = quick_case(FieldKind::Noise, 4, 2, Schedule::Full);
        c.hierarchy = true;
        run_case(&c).unwrap();
    }

    #[test]
    fn adaptive_irregular_case_is_clean() {
        // 6 blocks / 3 ranks: non-power-of-two everything
        let mut c = quick_case(FieldKind::Noise, 6, 3, Schedule::Full);
        c.decomp = DecompKind::Adaptive;
        run_case(&c).unwrap();
    }

    #[test]
    fn random_tree_case_is_clean() {
        let mut c = quick_case(FieldKind::Plateau(3), 5, 2, Schedule::Rounds(vec![4]));
        c.decomp = DecompKind::Random(42);
        run_case(&c).unwrap();
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        let n = fuzz(5, 1234, |_, _| {}).unwrap_or_else(|f| {
            panic!(
                "iteration {} failed: {}\nshrunk to:\n{}{}",
                f.iteration, f.reason, f.shrunk, f.shrunk_reason
            )
        });
        assert_eq!(n, 5);
    }
}
