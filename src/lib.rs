//! # morse-smale-parallel
//!
//! A Rust reproduction of **"The Parallel Computation of Morse-Smale
//! Complexes"** (A. Gyulassy, V. Pascucci, T. Peterka, R. Ross — IPDPS
//! 2012): a two-stage, data-parallel construction of the MS complex
//! 1-skeleton of a 3D scalar field, with configurable radix-k merging,
//! persistence simplification, and a collective block-structured output
//! file.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`grid`] — structured grids, refined cubical-complex addressing,
//!   bisection decomposition, raw volume I/O;
//! * [`synth`] — synthetic dataset generators (sinusoid complexity
//!   family, hydrogen-like, jet-like, Rayleigh-Taylor-like, porous);
//! * [`morse`] — discrete gradient computation and V-path tracing;
//! * [`complex`] — the MS-complex data structure: simplification,
//!   gluing, queries, serialization;
//! * [`vmpi`] — the virtual message-passing substrate (threaded backend,
//!   collective file I/O, BG/P-like torus network model);
//! * [`core`] — the parallel pipeline itself plus the scalable
//!   simulation driver and merge-strategy planner;
//! * [`fault`] — deterministic fault injection (crash/drop/delay/slow
//!   plans) and the CRC-protected round-boundary checkpoint format;
//! * [`telemetry`] — per-rank phase/counter recording, cross-rank
//!   aggregation, and the versioned `.telemetry.json` run reports;
//! * [`oracle`] — the independent reference implementation + invariant
//!   checker behind `--check` and the [`fuzz`] differential harness;
//! * [`segment`] — the full Morse-Smale segmentation: per-block labeled
//!   volumes along the discrete gradient, resolved across ranks by
//!   distributed path compression (`--segment`);
//! * [`hierarchy`] — the recorded cancellation hierarchy
//!   (`--hierarchy`): the complete simplification sequence as a
//!   versioned artifact, replayable to any persistence threshold
//!   bit-identically, and the substrate of the `msc serve` query layer.
//!
//! ## Quickstart
//!
//! ```
//! use morse_smale_parallel::prelude::*;
//!
//! // a small synthetic field with 8 features per side
//! let field = synth::sinusoid(33, 4);
//! // serial MS complex (one block, no merging)
//! let input = Input::Memory(std::sync::Arc::new(field));
//! let result = run_parallel(&input, 1, 1, &PipelineParams::default(), None).unwrap();
//! let ms = &result.outputs[0];
//! let census = ms.node_census();
//! assert_eq!(census[0] as i64 - census[1] as i64 + census[2] as i64
//!            - census[3] as i64, 1); // Euler characteristic of a box
//! ```

pub use msp_complex as complex;
pub use msp_core as core;
pub use msp_fault as fault;
pub use msp_grid as grid;
pub use msp_hierarchy as hierarchy;
pub use msp_morse as morse;
pub use msp_oracle as oracle;
pub use msp_segment as segment;
pub use msp_synth as synth;
pub use msp_telemetry as telemetry;
pub use msp_vmpi as vmpi;

pub mod fuzz;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use crate::complex::query;
    pub use crate::complex::{simplify, MsComplex, SimplifyParams};
    pub use crate::core::{
        run_parallel, simulate, FaultConfig, Input, MergePlan, PipelineError, PipelineParams,
        SimParams,
    };
    pub use crate::fault::{Checkpoint, FaultPlan};
    pub use crate::grid::{Decomposition, Dims, ScalarField};
    pub use crate::synth;
    pub use crate::telemetry::{RankReport, RunReport};
}
